// Table I: relative comparison of the pub/sub approaches, regenerated from
// small instances of the paper's experiments.
//
// The paper's Table I grades each approach on subscription traffic,
// delivery accuracy and broker processing behaviour; this driver measures
// all three on shared workloads and prints both the raw numbers and the
// derived grades.
#include <iostream>
#include <map>

#include "metrics/report.hpp"
#include "workloads/game.hpp"
#include "workloads/hft.hpp"

namespace {

using namespace evps;

struct SystemScore {
  double traffic = 0;        // sub msgs/min/broker (HFT)
  double error_rate = 0;     // FP+FN / truth (HFT)
  double processing_ms = 0;  // evolution-handling time (game)
};

HftConfig hft_config(SystemKind system, double pub_rate) {
  HftConfig cfg;
  cfg.system = system;
  cfg.seed = 42;
  cfg.pub_rate = pub_rate;
  cfg.change_rate_per_min = 30.0;
  cfg.validity = Duration::seconds(30.0);
  cfg.duration = SimTime::from_seconds(60.0);
  cfg.traffic_interval = Duration::seconds(30.0);
  return cfg;
}

const char* grade_traffic(double value, double resub) {
  if (value < resub * 0.1) return "very low";
  if (value < resub * 0.6) return "medium";
  return "high";
}

const char* grade_error(double e) {
  if (e < 0.01) return "excellent";
  if (e < 0.05) return "good";
  return "fair";
}

}  // namespace

int main() {
  std::cout << "Reproduction of Table I: relative comparison of approaches\n";

  const SystemKind systems[] = {SystemKind::kResub, SystemKind::kParametric, SystemKind::kVes,
                                SystemKind::kLees, SystemKind::kClees};
  std::map<SystemKind, SystemScore> scores;

  // Traffic (publication feed off — the metric is independent of it).
  for (const auto system : systems) {
    HftExperiment exp(hft_config(system, 0.0));
    exp.run();
    scores[system].traffic = exp.traffic().mean();
  }

  // Accuracy against the centralised ground truth.
  HftExperiment truth_exp(hft_config(SystemKind::kGroundTruth, 40.0));
  truth_exp.run();
  const DeliveryLog truth = truth_exp.delivery_log();
  for (const auto system : systems) {
    HftExperiment exp(hft_config(system, 40.0));
    exp.run();
    scores[system].error_rate = compare_logs(truth, exp.delivery_log()).error_rate();
  }

  // Processing time on the game broker.
  for (const auto system : systems) {
    GameConfig cfg;
    cfg.system = system;
    cfg.seed = 7;
    cfg.characters = 500;
    cfg.clients = 100;
    cfg.pub_rate = 200.0;
    cfg.duration = SimTime::from_seconds(15.0);
    GameExperiment exp(cfg);
    exp.run();
    const auto& costs = exp.engine_costs();
    scores[system].processing_ms =
        (costs.maintenance.sum() + costs.lazy_eval.sum()) * 1000.0;
  }

  const double resub_traffic = scores[SystemKind::kResub].traffic;
  Table t{{"approach", "sub traffic (msgs/min/broker)", "traffic grade", "FP+FN rate",
           "accuracy grade", "evolution processing (ms)"}};
  for (const auto system : systems) {
    const auto& s = scores[system];
    t.add_row({to_string(system), Table::fmt(s.traffic, 1),
               grade_traffic(s.traffic, resub_traffic), Table::fmt(s.error_rate * 100, 2) + "%",
               grade_error(s.error_rate), Table::fmt(s.processing_ms, 1)});
  }
  t.print();

  std::cout << "\npaper Table I (qualitative): resub = high traffic / worst accuracy;\n"
               "parametric = medium traffic; evolving = lowest traffic; LEES most\n"
               "accurate; CLEES best processing scalability; VES cheapest matching\n"
               "but maintenance grows with the total subscription population.\n";
  return 0;
}
