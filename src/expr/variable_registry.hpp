// Broker-local store of evolution variables (Section III-B / V).
//
// Each broker keeps the current value of every discrete evolution variable it
// knows about (e.g. in-game visibility `v`, a stock price, outgoing
// bandwidth). Values are piecewise-constant over virtual time and the full
// change history is retained, which lets the ground-truth oracle re-evaluate
// any subscription at the exact instant a publication entered the system
// (Section V-D consistency model).
//
// Variables are interned process-wide into dense `VarId`s (see
// `common/variable_table.hpp`); the registry stores one history per id in a
// flat vector, so the per-publication evaluation hot path never hashes or
// compares variable names. String-keyed overloads remain for the wire format,
// tests and diagnostics.
//
// The continuous variable `t` (elapsed time since a subscription was
// installed, "initialized to 0 at the time of subscription") is not stored
// here: it is derived from the evaluation scope's clock and the
// subscription's epoch.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/sim_time.hpp"
#include "common/variable_table.hpp"
#include "expr/ast.hpp"

namespace evps {

/// Name of the reserved continuous evolution variable: elapsed seconds since
/// the owning subscription was installed.
inline constexpr std::string_view kElapsedTimeVar = "t";

class VariableRegistry {
 public:
  using ListenerId = std::uint64_t;
  /// Invoked synchronously after a variable changes value.
  using Listener = std::function<void(VarId var, double value, SimTime when)>;

  VariableRegistry() = default;

  /// Set `var` to `value` effective at `when`. `when` must be >= the time of
  /// the variable's previous change (piecewise-constant history, appended in
  /// time order); violations throw std::invalid_argument.
  void set(VarId var, double value, SimTime when);
  void set(std::string_view name, double value, SimTime when) {
    set(VariableTable::instance().intern(name), value, when);
  }

  [[nodiscard]] bool has(VarId var) const noexcept {
    return var < vars_.size() && !vars_[var].changes.empty();
  }
  [[nodiscard]] bool has(std::string_view name) const noexcept {
    return has(VariableTable::instance().find(name));
  }

  /// Latest value, or nullopt if never set.
  [[nodiscard]] std::optional<double> get(VarId var) const noexcept;
  [[nodiscard]] std::optional<double> get(std::string_view name) const noexcept {
    return get(VariableTable::instance().find(name));
  }

  /// Value in effect at time `when` (the last change at or before `when`),
  /// or nullopt if the variable did not exist yet.
  [[nodiscard]] std::optional<double> get_at(VarId var, SimTime when) const noexcept;
  [[nodiscard]] std::optional<double> get_at(std::string_view name, SimTime when) const noexcept {
    return get_at(VariableTable::instance().find(name), when);
  }

  /// Number of changes applied to `var` (0 if unknown). Monotonic.
  [[nodiscard]] std::uint64_t version(VarId var) const noexcept {
    return var < vars_.size() ? vars_[var].changes.size() : 0;
  }
  [[nodiscard]] std::uint64_t version(std::string_view name) const noexcept {
    return version(VariableTable::instance().find(name));
  }

  /// Total number of changes applied across all variables. Monotonic.
  [[nodiscard]] std::uint64_t global_version() const noexcept { return global_version_; }

  /// Time of the last change to `var` (nullopt if unknown).
  [[nodiscard]] std::optional<SimTime> last_change(VarId var) const noexcept;
  [[nodiscard]] std::optional<SimTime> last_change(std::string_view name) const noexcept {
    return last_change(VariableTable::instance().find(name));
  }

  /// Names of all variables with at least one recorded change, in interning
  /// order (diagnostics / wire format).
  [[nodiscard]] std::vector<std::string> names() const;

  /// Ids of all variables with at least one recorded change, ascending.
  [[nodiscard]] std::vector<VarId> ids() const;

  /// Ids of all variables with a declared range, ascending — including ones
  /// never set (snapshot export needs declarations without values).
  [[nodiscard]] std::vector<VarId> declared_ids() const;

  /// Invoke `fn(var, latest_value)` for every known variable (snapshot
  /// piggybacking).
  void for_each_latest(const std::function<void(VarId, double)>& fn) const;

  // --- declared ranges (static analysis, broker-local) ----------------------
  /// Declare that `var` only ever takes values in [lo, hi]. The static
  /// analyzer (analysis/analyzer.hpp) uses declared ranges to bound evolving
  /// predicates; `set` enforces the declaration from then on (out-of-range
  /// updates throw std::invalid_argument). Bounds must be finite with
  /// lo <= hi. Declarations are broker-local contract metadata — they are not
  /// propagated on the wire.
  void declare_range(VarId var, double lo, double hi);
  void declare_range(std::string_view name, double lo, double hi) {
    declare_range(VariableTable::instance().intern(name), lo, hi);
  }

  /// Declared [lo, hi] range of `var`, or nullopt if none was declared.
  [[nodiscard]] std::optional<std::pair<double, double>> declared_range(VarId var) const noexcept;
  [[nodiscard]] std::optional<std::pair<double, double>> declared_range(
      std::string_view name) const noexcept {
    return declared_range(VariableTable::instance().find(name));
  }

  ListenerId add_listener(Listener listener);
  void remove_listener(ListenerId id);

 private:
  struct History {
    // (change time, value), strictly ordered by time. Later entries override.
    std::vector<std::pair<SimTime, double>> changes;
  };
  struct Range {
    double lo = 0.0;
    double hi = 0.0;
    bool declared = false;
  };
  // Histories indexed by process-wide VarId; ids this registry has never
  // seen hold empty histories (the variable universe is small and shared).
  std::vector<History> vars_;
  // Declared ranges indexed by VarId (sparse; most slots undeclared).
  std::vector<Range> ranges_;
  std::uint64_t global_version_ = 0;
  std::uint64_t next_listener_ = 1;
  std::map<ListenerId, Listener> listeners_;
};

/// Env implementation combining a VariableRegistry snapshot-in-time with the
/// per-subscription elapsed-time variable and optional local overrides.
///
/// Engines keep one EvalScope alive and *rebind* it per publication
/// (`rebind`) and per evolving part (`set_epoch`): overrides live in an
/// epoch-stamped dense slot array indexed by VarId, so rebinding invalidates
/// them in O(1) without freeing memory, and steady-state evaluation performs
/// no heap allocation. The string-keyed Env interface stays for the
/// tree-walking oracle; compiled programs use the VarId fast path.
class EvalScope final : public Env {
 public:
  EvalScope() noexcept = default;

  /// `registry` may be null (then only `t` and overrides resolve).
  /// `now` is the evaluation instant; `epoch` is the subscription install
  /// time, so `t = (now - epoch)` in seconds.
  EvalScope(const VariableRegistry* registry, SimTime now, SimTime epoch) noexcept
      : registry_(registry), now_(now), epoch_(epoch) {}

  /// Re-anchor the scope for a new evaluation round: swaps the registry and
  /// clock and drops all overrides (by stamp bump, not by clearing).
  void rebind(const VariableRegistry* registry, SimTime now) noexcept {
    registry_ = registry;
    now_ = now;
    if (++stamp_ == 0) {  // stamp wrapped: invalidate every slot explicitly
      std::fill(override_stamp_.begin(), override_stamp_.end(), 0);
      stamp_ = 1;
    }
  }

  /// Switch the subscription epoch (`t` anchor) without touching overrides;
  /// O(1), used per evolving part within one publication.
  void set_epoch(SimTime epoch) noexcept { epoch_ = epoch; }

  /// Bind (or shadow) a variable locally, e.g. piggybacked snapshot values.
  EvalScope& bind(VarId var, double value);
  EvalScope& bind(std::string_view name, double value) {
    return bind(VariableTable::instance().intern(name), value);
  }

  /// VarId fast path used by compiled expression programs. Throws
  /// UnboundVariableError like the string path.
  [[nodiscard]] double lookup(VarId var) const;
  [[nodiscard]] bool has(VarId var) const noexcept;

  [[nodiscard]] double lookup(std::string_view name) const override;
  [[nodiscard]] bool has(std::string_view name) const override;

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] SimTime epoch() const noexcept { return epoch_; }

 private:
  [[nodiscard]] bool override_at(VarId var, double& out) const noexcept {
    if (var < override_stamp_.size() && override_stamp_[var] == stamp_) {
      out = override_val_[var];
      return true;
    }
    return false;
  }

  const VariableRegistry* registry_ = nullptr;
  SimTime now_{};
  SimTime epoch_{};
  // Dense override slots indexed by VarId; a slot is bound iff its stamp
  // matches the current rebind stamp. Grown on demand (the variable universe
  // is stable, so steady state never reallocates).
  std::vector<double> override_val_;
  std::vector<std::uint32_t> override_stamp_;
  std::uint32_t stamp_ = 1;
};

}  // namespace evps
