#include "message/advertisement.hpp"

#include <limits>
#include <map>
#include <optional>

namespace evps {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Conjunction of numeric constraints on one attribute, as an interval.
/// String equality is tracked separately; everything else on strings is
/// ignored (conservative).
struct AttrConstraint {
  double lo = -kInf;
  bool lo_open = false;
  double hi = kInf;
  bool hi_open = false;
  std::optional<std::string> eq_string;
  bool contradiction = false;

  void apply(const Predicate& p) {
    if (p.is_evolving()) return;  // evolving predicates treated as unconstrained
    const Value& v = p.constant();
    if (v.is_string()) {
      if (p.op() == RelOp::kEq) {
        if (eq_string.has_value() && *eq_string != v.as_string()) contradiction = true;
        eq_string = v.as_string();
      }
      return;  // other string ops: unconstrained for overlap purposes
    }
    const double x = *v.numeric();
    switch (p.op()) {
      case RelOp::kLt: tighten_hi(x, /*open=*/true); break;
      case RelOp::kLe: tighten_hi(x, /*open=*/false); break;
      case RelOp::kGt: tighten_lo(x, /*open=*/true); break;
      case RelOp::kGe: tighten_lo(x, /*open=*/false); break;
      case RelOp::kEq:
        tighten_lo(x, false);
        tighten_hi(x, false);
        break;
      case RelOp::kNe: break;  // unconstrained (conservative)
    }
  }

  void tighten_lo(double x, bool open) {
    if (x > lo || (x == lo && open)) {
      lo = x;
      lo_open = open;
    }
  }
  void tighten_hi(double x, bool open) {
    if (x < hi || (x == hi && open)) {
      hi = x;
      hi_open = open;
    }
  }

  [[nodiscard]] bool feasible() const noexcept {
    if (contradiction) return false;
    if (lo < hi) return true;
    return lo == hi && !lo_open && !hi_open;
  }

  /// Conservative: false only when provably disjoint.
  [[nodiscard]] bool overlaps(const AttrConstraint& other) const noexcept {
    if (!feasible() || !other.feasible()) return false;
    if (eq_string.has_value() && other.eq_string.has_value() &&
        *eq_string != *other.eq_string) {
      return false;
    }
    // Combined numeric interval must be non-empty.
    AttrConstraint merged = *this;
    merged.tighten_lo(other.lo, other.lo_open);
    merged.tighten_hi(other.hi, other.hi_open);
    return merged.feasible();
  }
};

std::map<std::string, AttrConstraint> constraints_of(const std::vector<Predicate>& preds) {
  std::map<std::string, AttrConstraint> out;
  for (const auto& p : preds) out[p.attribute()].apply(p);
  return out;
}

}  // namespace

bool Advertisement::covers(const Publication& pub) const {
  for (const auto& p : predicates_) {
    const Value* v = pub.get(p.attribute());
    if (v == nullptr) return false;
    if (p.is_evolving()) continue;  // evolving advert predicates: unconstrained
    if (!p.matches(*v)) return false;
  }
  return true;
}

bool Advertisement::intersects(const Subscription& sub) const {
  const auto ad = constraints_of(predicates_);
  const auto sc = constraints_of(sub.predicates());
  // A subscription requires every constrained attribute to be present in a
  // matching publication; the advert promises each advertised attribute is
  // present. Attributes constrained by only one side cannot prove
  // disjointness, so only intersect the common ones.
  for (const auto& [attr, sub_c] : sc) {
    const auto it = ad.find(attr);
    if (it == ad.end()) continue;
    if (!it->second.overlaps(sub_c)) return false;
  }
  return true;
}

std::string Advertisement::to_string() const {
  std::string out = id_.str() + "@" + publisher_.str() + " adv{";
  for (std::size_t i = 0; i < predicates_.size(); ++i) {
    if (i != 0) out += "; ";
    out += predicates_[i].to_string();
  }
  out += "}";
  return out;
}

}  // namespace evps
