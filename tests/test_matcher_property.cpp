// Property suite: the counting matcher must agree exactly with the
// brute-force oracle on randomized workloads, including interleaved
// insertions and removals. Generators emit IEEE specials (NaN, ±inf, −0.0)
// as both predicate constants and publication values — incomparable pairs
// must satisfy exactly kNe, everywhere.
#include <gtest/gtest.h>

#include <limits>

#include "common/rng.hpp"
#include "matching/brute_force_matcher.hpp"
#include "matching/churn_matcher.hpp"
#include "matching/counting_matcher.hpp"

namespace evps {
namespace {

const char* kAttributes[] = {"x", "y", "price", "volume", "symbol"};

Value special_double(Rng& rng) {
  switch (rng.uniform_int(0, 3)) {
    case 0: return Value{std::numeric_limits<double>::quiet_NaN()};
    case 1: return Value{std::numeric_limits<double>::infinity()};
    case 2: return Value{-std::numeric_limits<double>::infinity()};
    default: return Value{-0.0};
  }
}

Value random_value(Rng& rng, bool allow_string) {
  const auto kind = rng.uniform_int(0, allow_string ? 3 : 2);
  switch (kind) {
    case 0: return Value{rng.uniform_int(-20, 20)};
    case 1: return Value{rng.uniform(-20.0, 20.0)};
    case 2: return special_double(rng);
    default: return Value{std::string(1, static_cast<char>('a' + rng.uniform_int(0, 5)))};
  }
}

Predicate random_predicate(Rng& rng) {
  const auto* attr = kAttributes[rng.uniform_int(0, 4)];
  const auto op = static_cast<RelOp>(rng.uniform_int(0, 5));
  return Predicate{attr, op, random_value(rng, true)};
}

Publication random_publication(Rng& rng) {
  Publication pub;
  const auto n = rng.uniform_int(1, 4);
  for (std::int64_t i = 0; i < n; ++i) {
    pub.set(kAttributes[rng.uniform_int(0, 4)], random_value(rng, true));
  }
  return pub;
}

struct Params {
  std::uint64_t seed;
  int subscriptions;
  int publications;
};

class MatcherAgreement : public ::testing::TestWithParam<Params> {};

TEST_P(MatcherAgreement, CountingEqualsBruteForce) {
  const auto [seed, n_subs, n_pubs] = GetParam();
  Rng rng{seed};
  BruteForceMatcher oracle;
  CountingMatcher counting;
  ChurnMatcher churn;

  std::vector<SubscriptionId> live;
  std::uint64_t next_id = 1;

  // Interleave adds, removes and matches.
  const int operations = n_subs + n_pubs;
  for (int op = 0; op < operations; ++op) {
    const double roll = rng.uniform();
    if (roll < 0.45 || live.empty()) {
      const SubscriptionId id{next_id++};
      std::vector<Predicate> preds;
      const auto n = rng.uniform_int(1, 3);
      for (std::int64_t i = 0; i < n; ++i) preds.push_back(random_predicate(rng));
      oracle.add(id, preds);
      counting.add(id, preds);
      churn.add(id, preds);
      live.push_back(id);
    } else if (roll < 0.55) {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      const SubscriptionId id = live[idx];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
      EXPECT_EQ(oracle.remove(id), true);
      EXPECT_EQ(counting.remove(id), true);
      EXPECT_EQ(churn.remove(id), true);
    } else {
      const Publication pub = random_publication(rng);
      const auto expected = oracle.match(pub);
      ASSERT_EQ(counting.match(pub), expected) << "pub " << pub.to_string() << " seed " << seed;
      ASSERT_EQ(churn.match(pub), expected) << "pub " << pub.to_string() << " seed " << seed;
    }
    ASSERT_EQ(counting.size(), oracle.size());
    ASSERT_EQ(churn.size(), oracle.size());
  }
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, MatcherAgreement,
                         ::testing::Values(Params{1, 200, 400}, Params{2, 200, 400},
                                           Params{3, 200, 400}, Params{4, 500, 500},
                                           Params{5, 500, 500}, Params{6, 50, 1000},
                                           Params{7, 1000, 200}, Params{8, 300, 600},
                                           Params{977, 400, 400}, Params{31337, 250, 800}));

TEST(MatcherAgreement, DenseSameBoundWorkload) {
  // Many predicates sharing the exact same bound stress equal_range removal.
  Rng rng{99};
  BruteForceMatcher oracle;
  CountingMatcher counting;
  for (std::uint64_t i = 1; i <= 100; ++i) {
    const std::vector<Predicate> preds{
        Predicate{"x", static_cast<RelOp>(i % 6), Value{5}},
    };
    oracle.add(SubscriptionId{i}, preds);
    counting.add(SubscriptionId{i}, preds);
  }
  for (int v = 0; v <= 10; ++v) {
    Publication pub{{"x", Value{v}}};
    ASSERT_EQ(counting.match(pub), oracle.match(pub)) << v;
  }
  // Remove odd ids, re-check.
  for (std::uint64_t i = 1; i <= 100; i += 2) {
    oracle.remove(SubscriptionId{i});
    counting.remove(SubscriptionId{i});
  }
  for (int v = 0; v <= 10; ++v) {
    Publication pub{{"x", Value{v}}};
    ASSERT_EQ(counting.match(pub), oracle.match(pub)) << v;
  }
}

}  // namespace
}  // namespace evps
