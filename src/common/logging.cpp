#include "common/logging.hpp"

namespace evps {

namespace {
constexpr std::string_view level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, std::string_view component, std::string_view message) {
  const std::scoped_lock lock(mutex_);
  std::clog << "[" << level_name(level) << "] " << component << ": " << message << '\n';
}

}  // namespace evps
