#!/usr/bin/env bash
# Tier-1 entry point: configure, build and test every preset, run clang-tidy
# (when installed), and smoke-run the benchmarks. CI and pre-merge checks run
# exactly this script; a clean exit means the change is green across the
# default build, ASan+UBSan, and TSan.
#
# Usage: scripts/check.sh [--quick]
#   --quick   default preset only (skip sanitizers, lint and bench smoke)
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

run_preset() {
  local preset="$1"
  echo "=== preset: ${preset} ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${JOBS}"
  ctest --preset "${preset}"
}

run_preset default

if [[ "${QUICK}" == "0" ]]; then
  run_preset sanitize
  run_preset sanitize-thread

  echo "=== lint (clang-tidy) ==="
  cmake --build build --target lint -j "${JOBS}"

  echo "=== bench-smoke ==="
  # One pass over every benchmark binary with minimal repetitions: catches
  # crashes and assertion failures without paying for stable timings.
  for bench in build/bench/*; do
    [[ -x "${bench}" ]] || continue
    "${bench}" --benchmark_min_time=0.01s --benchmark_repetitions=1 >/dev/null
    echo "ok: ${bench}"
  done
fi

echo "All checks passed."
