#include "common/value.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <sstream>

namespace evps {

std::optional<int> Value::compare(const Value& rhs) const noexcept {
  if (is_string() != rhs.is_string()) return std::nullopt;
  if (is_string()) {
    const int c = as_string().compare(rhs.as_string());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  // Both numeric. Compare in double space; exact int/int comparison avoids
  // precision loss for large integers.
  if (is_int() && rhs.is_int()) {
    const auto a = as_int();
    const auto b = rhs.as_int();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  const double a = *numeric();
  const double b = *rhs.numeric();
  if (std::isnan(a) || std::isnan(b)) return std::nullopt;
  return a < b ? -1 : (a > b ? 1 : 0);
}

std::string Value::to_string() const {
  if (is_int()) return std::to_string(as_int());
  if (is_string()) return "'" + as_string() + "'";
  std::ostringstream os;
  os.precision(17);  // max_digits10: exact round-trip through parse()
  os << as_double();
  // Keep a marker so round-tripping preserves double-ness of whole values.
  const std::string s = os.str();
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
      s.find("inf") == std::string::npos && s.find("nan") == std::string::npos) {
    return s + ".0";
  }
  return s;
}

Value Value::parse(std::string_view text) {
  if (text.empty()) return Value{std::string{}};
  if (text.front() == '\'') {
    // Quoted string: strip the quotes if balanced.
    if (text.size() >= 2 && text.back() == '\'') {
      return Value{std::string(text.substr(1, text.size() - 2))};
    }
    return Value{std::string(text.substr(1))};
  }
  // Try integer first (full-width match required).
  {
    std::int64_t i = 0;
    const auto* begin = text.data();
    const auto* end = text.data() + text.size();
    auto [p, ec] = std::from_chars(begin, end, i);
    if (ec == std::errc{} && p == end) return Value{i};
  }
  // Then double.
  {
    double d = 0;
    const auto* begin = text.data();
    const auto* end = text.data() + text.size();
    auto [p, ec] = std::from_chars(begin, end, d);
    if (ec == std::errc{} && p == end) return Value{d};
  }
  return Value{std::string(text)};
}

}  // namespace evps
