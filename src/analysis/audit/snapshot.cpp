#include "analysis/audit/snapshot.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "message/codec.hpp"

namespace evps::audit {

namespace {

/// Bit-exact double rendering (decimal formatting would collapse distinct
/// values; the canonical text must change iff the state changed).
std::string hex_double(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIx64, bits);
  return buf;
}

void sort_ids(std::vector<SubscriptionId>& ids) { std::sort(ids.begin(), ids.end()); }
void sort_nodes(std::vector<NodeId>& nodes) { std::sort(nodes.begin(), nodes.end()); }

}  // namespace

void OverlaySnapshot::normalize() {
  for (BrokerState& b : brokers) {
    sort_nodes(b.broker_neighbors);
    sort_nodes(b.client_neighbors);
    std::sort(b.routes.begin(), b.routes.end(),
              [](const RouteEntry& x, const RouteEntry& y) { return x.id < y.id; });
    for (RouteEntry& r : b.routes) sort_nodes(r.forwards);
    std::sort(b.adverts.begin(), b.adverts.end(),
              [](const AdvertEntry& x, const AdvertEntry& y) { return x.id < y.id; });
    std::sort(b.forest.begin(), b.forest.end(),
              [](const ForestNode& x, const ForestNode& y) { return x.id < y.id; });
    for (ForestNode& n : b.forest) sort_ids(n.children);
    sort_ids(b.engine.matcher_ids);
    std::sort(b.engine.lazy_entries.begin(), b.engine.lazy_entries.end(),
              [](const LazyEntry& x, const LazyEntry& y) {
                return x.id != y.id ? x.id < y.id : x.dest < y.dest;
              });
    // Group order is canonicalised by key; member order inside a group is
    // semantic (the first member is the physically-installed canonical).
    std::sort(b.engine.dedup_groups.begin(), b.engine.dedup_groups.end(),
              [](const DedupGroup& x, const DedupGroup& y) {
                return x.lazy != y.lazy ? !x.lazy : x.key < y.key;
              });
    std::sort(b.pending_links.begin(), b.pending_links.end(),
              [](const PendingLink& x, const PendingLink& y) { return x.dest < y.dest; });
    std::sort(b.variables.begin(), b.variables.end(),
              [](const VariableState& x, const VariableState& y) { return x.name < y.name; });
  }
  std::sort(brokers.begin(), brokers.end(),
            [](const BrokerState& x, const BrokerState& y) { return x.node < y.node; });
}

const BrokerState* OverlaySnapshot::find(NodeId node) const {
  for (const BrokerState& b : brokers) {
    if (b.node == node) return &b;
  }
  return nullptr;
}

std::string canonical_text(const OverlaySnapshot& snap) {
  std::ostringstream os;
  os << "overlay brokers=" << snap.brokers.size() << "\n";
  for (const BrokerState& b : snap.brokers) {
    os << "broker " << b.node << " name=" << b.name << " routing=" << b.routing
       << " covering=" << (b.covering_enabled ? 1 : 0) << "\n";
    os << "  neighbors brokers=[";
    for (const NodeId n : b.broker_neighbors) os << " " << n;
    os << " ] clients=[";
    for (const NodeId n : b.client_neighbors) os << " " << n;
    os << " ]\n";
    for (const RouteEntry& r : b.routes) {
      os << "  route " << r.id << " ->";
      for (const NodeId n : r.forwards) os << " " << n;
      os << "\n";
    }
    for (const AdvertEntry& a : b.adverts) {
      os << "  advert " << a.id << " from=" << a.from << " preds=[";
      if (a.adv) {
        for (const Predicate& p : a.adv->predicates()) os << " {" << serialize(p) << "}";
      }
      os << " ]\n";
    }
    for (const ForestNode& n : b.forest) {
      os << "  forest " << n.id << " parent=" << n.parent << " children=[";
      for (const SubscriptionId c : n.children) os << " " << c;
      os << " ]\n";
    }
    os << "  engine kind=" << b.engine.kind << " dedup=" << (b.engine.dedup_identical ? 1 : 0)
       << "\n";
    for (const auto& [id, e] : b.engine.installed) {
      os << "  installed " << id << " dest=" << e.dest << " broker_hop=" << (e.dest_is_broker ? 1 : 0)
         << " static=" << e.static_preds << " evolving=" << e.evolving_preds;
      if (e.sub) {
        os << " subscriber=" << e.sub->subscriber() << " epoch=" << e.sub->epoch().micros()
           << " text={" << serialize(*e.sub) << "}";
      }
      os << "\n";
    }
    os << "  matcher [";
    for (const SubscriptionId id : b.engine.matcher_ids) os << " " << id;
    os << " ]\n";
    for (const LazyEntry& e : b.engine.lazy_entries) {
      os << "  lazy " << e.id << " dest=" << e.dest << "\n";
    }
    for (const DedupGroup& g : b.engine.dedup_groups) {
      os << "  dedup " << (g.lazy ? "lazy" : "static") << " key={" << g.key << "} members=[";
      for (const SubscriptionId id : g.members) os << " " << id;
      os << " ]\n";
    }
    os << "  pending match_batch=" << b.pending_match_batch << "\n";
    for (const PendingLink& p : b.pending_links) {
      os << "  pending link dest=" << p.dest << " n=" << p.pending << "\n";
    }
    for (const VariableState& v : b.variables) {
      os << "  var " << v.name;
      if (v.declared) os << " in [" << hex_double(v.lo) << ", " << hex_double(v.hi) << "]";
      if (v.has_value) os << " = " << hex_double(v.value);
      os << "\n";
    }
  }
  return os.str();
}

VariableRegistry rebuild_registry(const BrokerState& broker,
                                  const std::vector<VariableState>& extra_declarations) {
  VariableRegistry registry;
  for (const VariableState& v : broker.variables) {
    if (v.declared) registry.declare_range(v.name, v.lo, v.hi);
  }
  // Merge peer declarations for locally-undeclared variables, unless they
  // contradict a local value (a declaration must never reject state the
  // broker actually held).
  for (const VariableState& v : extra_declarations) {
    if (!v.declared || registry.declared_range(v.name).has_value()) continue;
    bool contradicts = false;
    for (const VariableState& local : broker.variables) {
      if (local.name == v.name && local.has_value &&
          (local.value < v.lo || local.value > v.hi)) {
        contradicts = true;
        break;
      }
    }
    if (!contradicts) registry.declare_range(v.name, v.lo, v.hi);
  }
  for (const VariableState& v : broker.variables) {
    if (v.has_value) registry.set(v.name, v.value, SimTime::zero());
  }
  return registry;
}

}  // namespace evps::audit
