// Micro-benchmarks: evolution expression parsing and evaluation — the
// per-predicate cost that LEES pays on every publication.
#include <benchmark/benchmark.h>

#include <vector>

#include "expr/parser.hpp"
#include "gbench_main.hpp"
#include "expr/program.hpp"
#include "expr/variable_registry.hpp"
#include "message/predicate.hpp"

namespace {

using namespace evps;

void BM_ParseSimple(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(parse_expr("-3 + t"));
  }
}
BENCHMARK(BM_ParseSimple);

void BM_ParseGameSubscription(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(parse_expr("(3 + 1.5 * t) * v"));
  }
}
BENCHMARK(BM_ParseGameSubscription);

void BM_EvalLinear(benchmark::State& state) {
  const auto expr = parse_expr("-3 + 1.5 * t");
  const MapEnv env{{"t", 2.0}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr->eval(env));
  }
}
BENCHMARK(BM_EvalLinear);

void BM_EvalVisibilityScaled(benchmark::State& state) {
  const auto expr = parse_expr("(3 + 1.5 * t) * v");
  const MapEnv env{{"t", 2.0}, {"v", 0.5}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr->eval(env));
  }
}
BENCHMARK(BM_EvalVisibilityScaled);

void BM_EvalThroughRegistryScope(benchmark::State& state) {
  const auto expr = parse_expr("(3 + 1.5 * t) * v");
  VariableRegistry registry;
  registry.set("v", 0.5, SimTime::zero());
  const EvalScope scope{&registry, SimTime::from_seconds(2), SimTime::zero()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr->eval(scope));
  }
}
BENCHMARK(BM_EvalThroughRegistryScope);

void BM_EvalDeepRegistryHistory(benchmark::State& state) {
  const auto expr = parse_expr("10 * v");
  VariableRegistry registry;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    registry.set("v", i * 0.001, SimTime::from_seconds(i));
  }
  const EvalScope scope{&registry, SimTime::from_seconds(state.range(0) / 2.0),
                        SimTime::zero()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr->eval(scope));
  }
}
BENCHMARK(BM_EvalDeepRegistryHistory)->Arg(16)->Arg(256)->Arg(4096);

void BM_MaterializePredicate(benchmark::State& state) {
  const Predicate pred{"x", RelOp::kGe, parse_expr("-3 + 1.5 * t")};
  const MapEnv env{{"t", 2.0}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(pred.materialize(env));
  }
}
BENCHMARK(BM_MaterializePredicate);

// --- Compiled counterparts: same expressions lowered to flat ExprProgram ---
// These are the numbers the engine hot paths actually pay per publication.

void BM_CompileProgram(benchmark::State& state) {
  const auto expr = parse_expr("(3 + 1.5 * t) * v");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExprProgram::compile(*expr));
  }
}
BENCHMARK(BM_CompileProgram);

void BM_EvalCompiledLinear(benchmark::State& state) {
  const ExprProgram prog = ExprProgram::compile(*parse_expr("-3 + 1.5 * t"));
  const EvalScope scope{nullptr, SimTime::from_seconds(2), SimTime::zero()};
  std::vector<double> stack;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prog.eval(scope, stack));
  }
}
BENCHMARK(BM_EvalCompiledLinear);

void BM_EvalCompiledVisibilityScaled(benchmark::State& state) {
  const ExprProgram prog = ExprProgram::compile(*parse_expr("(3 + 1.5 * t) * v"));
  VariableRegistry registry;
  registry.set("v", 0.5, SimTime::zero());
  const EvalScope scope{&registry, SimTime::from_seconds(2), SimTime::zero()};
  std::vector<double> stack;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prog.eval(scope, stack));
  }
}
BENCHMARK(BM_EvalCompiledVisibilityScaled);

void BM_EvalCompiledReboundScope(benchmark::State& state) {
  // The engine pattern: one scope rebound per publication, then evaluated.
  const ExprProgram prog = ExprProgram::compile(*parse_expr("(3 + 1.5 * t) * v"));
  VariableRegistry registry;
  registry.set("v", 0.5, SimTime::zero());
  EvalScope scope;
  std::vector<double> stack;
  for (auto _ : state) {
    scope.rebind(&registry, SimTime::from_seconds(2));
    benchmark::DoNotOptimize(prog.eval(scope, stack));
  }
}
BENCHMARK(BM_EvalCompiledReboundScope);

void BM_EvalCompiledDeepRegistryHistory(benchmark::State& state) {
  const ExprProgram prog = ExprProgram::compile(*parse_expr("10 * v"));
  VariableRegistry registry;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    registry.set("v", i * 0.001, SimTime::from_seconds(i));
  }
  const EvalScope scope{&registry, SimTime::from_seconds(state.range(0) / 2.0),
                        SimTime::zero()};
  std::vector<double> stack;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prog.eval(scope, stack));
  }
}
BENCHMARK(BM_EvalCompiledDeepRegistryHistory)->Arg(16)->Arg(256)->Arg(4096);

void BM_CompiledPredicateBound(benchmark::State& state) {
  const CompiledPredicate pred{Predicate{"x", RelOp::kGe, parse_expr("-3 + 1.5 * t")}};
  const EvalScope scope{nullptr, SimTime::from_seconds(2), SimTime::zero()};
  std::vector<double> stack;
  bool unbound = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pred.bound(scope, stack, unbound));
  }
}
BENCHMARK(BM_CompiledPredicateBound);

}  // namespace

int main(int argc, char** argv) { return evps_bench::run(argc, argv, "BENCH_expr.json"); }
