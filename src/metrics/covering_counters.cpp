#include "metrics/covering_counters.hpp"

#include <ostream>

#include "broker/broker.hpp"
#include "metrics/report.hpp"

namespace evps {

void print_covering_report(const std::vector<const Broker*>& brokers, std::ostream& os) {
  Table table({"broker", "pairs", "covered", "unknown", "suppressed", "retracted", "resubs",
               "net saved"});
  CoverStats total_pairs;
  CoveringCounters total;
  for (const Broker* broker : brokers) {
    const CoverStats pairs = broker->covering_stats();
    const CoveringCounters& c = broker->covering_counters();
    total_pairs.pairs += pairs.pairs;
    total_pairs.covered += pairs.covered;
    total_pairs.unknown += pairs.unknown;
    total.suppressed_forwards += c.suppressed_forwards;
    total.demote_unsubscribes += c.demote_unsubscribes;
    total.resubscribes += c.resubscribes;
    table.add_row({broker->name(), std::to_string(pairs.pairs), std::to_string(pairs.covered),
                   std::to_string(pairs.unknown), std::to_string(c.suppressed_forwards),
                   std::to_string(c.demote_unsubscribes), std::to_string(c.resubscribes),
                   std::to_string(c.net_saved())});
  }
  table.add_row({"total", std::to_string(total_pairs.pairs), std::to_string(total_pairs.covered),
                 std::to_string(total_pairs.unknown), std::to_string(total.suppressed_forwards),
                 std::to_string(total.demote_unsubscribes), std::to_string(total.resubscribes),
                 std::to_string(total.net_saved())});
  table.print(os);
}

}  // namespace evps
