file(REMOVE_RECURSE
  "CMakeFiles/test_broker.dir/test_broker.cpp.o"
  "CMakeFiles/test_broker.dir/test_broker.cpp.o.d"
  "test_broker"
  "test_broker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_broker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
