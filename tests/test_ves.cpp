// Versioned Evolving Subscriptions behaviour (Sections IV-A, V-A).
#include <gtest/gtest.h>

#include "evolving/ves_engine.hpp"
#include "test_util.hpp"

namespace evps {
namespace {

using testutil::SimHost;
using testutil::make_sub;
using testutil::match;

SimTime sec(double s) { return SimTime::from_seconds(s); }

struct VesTest : ::testing::Test {
  Simulator sim;
  SimHost host{sim};
  EngineConfig cfg{.kind = EngineKind::kVes};
  VesEngine engine{cfg};
};

TEST_F(VesTest, StaticSubscriptionPassesThrough) {
  engine.add(make_sub(1, "x > 0"), NodeId{1}, host);
  EXPECT_EQ(match(engine, host, parse_publication("x = 1")).size(), 1u);
  EXPECT_EQ(engine.queued_count(), 0u);  // static subs never enter the ESQ
}

TEST_F(VesTest, InitialVersionMaterializedAtInstallTime) {
  // x <= 2*t with t=0 at install: version is x <= 0.
  engine.add(make_sub(1, "[mei=1] x <= 2 * t"), NodeId{1}, host);
  EXPECT_TRUE(match(engine, host, parse_publication("x = 1")).empty());
  EXPECT_EQ(match(engine, host, parse_publication("x = 0")).size(), 1u);
  EXPECT_EQ(engine.queued_count(), 1u);
}

TEST_F(VesTest, TimeDrivenEvolutionAtMeiBoundary) {
  engine.add(make_sub(1, "[mei=1] x <= 2 * t"), NodeId{1}, host);
  // Still the t=0 version just before the MEI fires.
  sim.run_until(sec(0.999));
  EXPECT_TRUE(match(engine, host, parse_publication("x = 1")).empty());
  // After the MEI the version is x <= 2.
  sim.run_until(sec(1.001));
  EXPECT_EQ(match(engine, host, parse_publication("x = 1")).size(), 1u);
  EXPECT_TRUE(match(engine, host, parse_publication("x = 3")).empty());
  EXPECT_GE(engine.costs().evolutions, 1u);
}

TEST_F(VesTest, VersionsAreStaleBetweenEvolutions) {
  engine.add(make_sub(1, "[mei=1] x <= 2 * t"), NodeId{1}, host);
  sim.run_until(sec(1.5));  // last evolution at t=1 -> x <= 2
  // The exact value at t=1.5 would be x <= 3, but the stored version lags.
  EXPECT_TRUE(match(engine, host, parse_publication("x = 3")).empty());
  sim.run_until(sec(2.0));  // evolution at t=2 -> x <= 4
  EXPECT_EQ(match(engine, host, parse_publication("x = 3")).size(), 1u);
}

TEST_F(VesTest, MeiControlsEvolutionRate) {
  engine.add(make_sub(1, "[mei=0.5] x <= t", sec(0)), NodeId{1}, host);
  engine.add(make_sub(2, "[mei=2] y <= t", sec(0)), NodeId{2}, host);
  sim.run_until(sec(3.05));
  // Sub 1 evolved ~6 times, sub 2 once at t=2.
  EXPECT_EQ(match(engine, host, parse_publication("x = 3")).size(), 1u);
  EXPECT_EQ(match(engine, host, parse_publication("y = 2")).size(), 1u);
  EXPECT_TRUE(match(engine, host, parse_publication("y = 2.5")).empty());
}

TEST_F(VesTest, DiscreteVariableParkedUntilChange) {
  host.set_variable("v", 1.0);
  engine.add(make_sub(1, "[mei=1] x <= 10 * v"), NodeId{1}, host);
  sim.run_until(sec(5));
  // Due since t=1 but v never changed: parked in the ready list with the
  // original version x <= 10 still active.
  EXPECT_EQ(engine.ready_count(), 1u);
  EXPECT_EQ(match(engine, host, parse_publication("x = 5")).size(), 1u);
  const auto evolutions_before = engine.costs().evolutions;

  // The variable change triggers the parked evolution immediately.
  host.set_variable("v", 0.1);
  EXPECT_EQ(engine.ready_count(), 0u);
  EXPECT_EQ(engine.costs().evolutions, evolutions_before + 1);
  EXPECT_TRUE(match(engine, host, parse_publication("x = 5")).empty());
  EXPECT_EQ(match(engine, host, parse_publication("x = 0.5")).size(), 1u);
}

TEST_F(VesTest, VariableChangeBeforeMeiWaitsForDueTime) {
  host.set_variable("v", 1.0);
  engine.add(make_sub(1, "[mei=2] x <= 10 * v"), NodeId{1}, host);
  sim.run_until(sec(0.5));
  host.set_variable("v", 0.1);  // changes within the MEI window
  // Version must still be the original x <= 10 (MEI not elapsed).
  EXPECT_EQ(match(engine, host, parse_publication("x = 5")).size(), 1u);
  // At the due time the engine notices the changed variable and evolves.
  sim.run_until(sec(2.001));
  EXPECT_TRUE(match(engine, host, parse_publication("x = 5")).empty());
}

TEST_F(VesTest, MixedTimeAndVariableDependency) {
  host.set_variable("v", 2.0);
  engine.add(make_sub(1, "[mei=1] x <= t * v"), NodeId{1}, host);
  sim.run_until(sec(2.1));  // evolutions at 1s, 2s; version: x <= 2*2 = 4
  EXPECT_EQ(match(engine, host, parse_publication("x = 4")).size(), 1u);
  EXPECT_TRUE(match(engine, host, parse_publication("x = 5")).empty());
}

TEST_F(VesTest, UnsubscribeStopsEvolution) {
  engine.add(make_sub(1, "[mei=1] x <= 2 * t"), NodeId{1}, host);
  sim.run_until(sec(1.5));
  EXPECT_TRUE(engine.remove(SubscriptionId{1}, host));
  EXPECT_EQ(engine.queued_count(), 0u);
  const auto evolutions = engine.costs().evolutions;
  sim.run_until(sec(5));
  EXPECT_EQ(engine.costs().evolutions, evolutions);  // no further evolutions
  EXPECT_TRUE(match(engine, host, parse_publication("x = 0")).empty());
}

TEST_F(VesTest, MaintenanceCostGrowsWithEvolutions) {
  engine.add(make_sub(1, "[mei=0.5] x <= t"), NodeId{1}, host);
  sim.run_until(sec(4));
  // 1 initial materialisation + ~7-8 evolutions.
  EXPECT_GE(engine.costs().maintenance.count(), 7u);
  EXPECT_GE(engine.costs().evolutions, 6u);
}

TEST_F(VesTest, ManySubscriptionsEvolveIndependently) {
  for (std::uint64_t i = 1; i <= 50; ++i) {
    engine.add(make_sub(i, "[mei=1] x <= 2 * t"), NodeId{i}, host);
  }
  sim.run_until(sec(2.5));
  const auto dests = match(engine, host, parse_publication("x = 4"));
  EXPECT_EQ(dests.size(), 50u);  // all versions show x <= 4 after the t=2 evolution
}

TEST_F(VesTest, SubscriptionEpochAnchorsTime) {
  // Install at t=5 with epoch 5: the version at install is x <= 0.
  sim.run_until(sec(5));
  engine.add(make_sub(1, "[mei=1] x <= 2 * t", sec(5)), NodeId{1}, host);
  EXPECT_EQ(match(engine, host, parse_publication("x = 0")).size(), 1u);
  EXPECT_TRUE(match(engine, host, parse_publication("x = 1")).empty());
  sim.run_until(sec(6.001));  // t=1 since epoch -> x <= 2
  EXPECT_EQ(match(engine, host, parse_publication("x = 2")).size(), 1u);
}

TEST_F(VesTest, SnapshotIgnoredByDesign) {
  engine.add(make_sub(1, "[mei=1] x <= 2 * t"), NodeId{1}, host);
  sim.run_until(sec(1.1));  // version x <= 2
  VariableSnapshot snapshot = make_variable_snapshot({{"t", 100.0}});  // would imply x <= 200
  std::vector<NodeId> dests;
  engine.match(parse_publication("x = 50"), &snapshot, host, dests);
  EXPECT_TRUE(dests.empty());  // VES cannot honour snapshots (Section V-D)
}

}  // namespace
}  // namespace evps
