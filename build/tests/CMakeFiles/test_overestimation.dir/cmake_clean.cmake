file(REMOVE_RECURSE
  "CMakeFiles/test_overestimation.dir/test_overestimation.cpp.o"
  "CMakeFiles/test_overestimation.dir/test_overestimation.cpp.o.d"
  "test_overestimation"
  "test_overestimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_overestimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
