file(REMOVE_RECURSE
  "CMakeFiles/fig8_processing.dir/bench/fig8_processing.cpp.o"
  "CMakeFiles/fig8_processing.dir/bench/fig8_processing.cpp.o.d"
  "bench/fig8_processing"
  "bench/fig8_processing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_processing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
