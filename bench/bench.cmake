# Experiment drivers (one per paper figure/table) plus google-benchmark
# micro-benchmarks. Included from the top-level CMakeLists so the binaries
# land alone in ${CMAKE_BINARY_DIR}/bench.
function(evps_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE
    evps_workloads evps_metrics evps_broker evps_evolving
    evps_matching evps_message evps_expr evps_sim evps_common)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

# Google-benchmark micro benches; each defines its own main() (see
# bench/gbench_main.hpp) so results are dumped to BENCH_*.json by default.
#
# Each micro bench also registers a `bench_smoke_<name>` ctest entry that runs
# every benchmark for a minimal time, so CI catches benches that crash or
# assert without paying for a full measurement run. Extra arguments are
# forwarded to the binary (e.g. a --benchmark_filter excluding slow cases).
function(evps_gbench name)
  evps_bench(${name})
  target_link_libraries(${name} PRIVATE benchmark::benchmark)
  add_test(NAME bench_smoke_${name}
    COMMAND ${name} --benchmark_min_time=0.01
      --benchmark_out=${CMAKE_BINARY_DIR}/bench/SMOKE_${name}.json
      --benchmark_out_format=json ${ARGN}
    WORKING_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
  set_tests_properties(bench_smoke_${name} PROPERTIES LABELS bench-smoke)
endfunction()

evps_bench(fig6_traffic)
evps_bench(fig7_accuracy)
evps_bench(fig8_processing)
evps_bench(fig9_evolution_volume)
evps_bench(fig10ab_throughput)
evps_bench(fig10c_visibility)
evps_bench(table1_summary)
evps_bench(ablation_hybrid)
evps_bench(ablation_matcher)
evps_bench(routing_covering)
# The covering-routing bench is cheap and self-checking (nonzero exit when
# covering on/off delivery logs diverge): run it whole as a smoke test.
add_test(NAME bench_smoke_routing_covering
  COMMAND routing_covering ${CMAKE_BINARY_DIR}/bench/BENCH_routing.json
  WORKING_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
set_tests_properties(bench_smoke_routing_covering PROPERTIES LABELS bench-smoke)
evps_bench(overlay_batch)
# Also cheap and self-checking (nonzero exit when batched delivery logs
# diverge from the per-message baseline, events drift, or the batch=64
# amortisation drops below 5 events/message). Writes to its own file: both
# overlay benches read-modify-write a shared results file, which would race
# under `ctest -j`.
add_test(NAME bench_smoke_overlay_batch
  COMMAND overlay_batch ${CMAKE_BINARY_DIR}/bench/BENCH_overlay_batch.json
  WORKING_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
set_tests_properties(bench_smoke_overlay_batch PROPERTIES LABELS bench-smoke)
evps_gbench(micro_expr)
# Population-heavy cases stay out of the smoke run (the 100k point-insert
# fill alone takes ~15s, and the maintenance sweep goes to 1M): smoke keeps
# the 10k variants, which still exercise the bulk-build and per-op paths.
evps_gbench(micro_matcher
  "--benchmark_filter=-(BM_LargePopulationMatch|BM_MaintenanceSweep<.*>/(100000|1000000)|BM_BulkRebuild/100000)")
evps_gbench(micro_engines)
