#include "broker/broker.hpp"

#include <algorithm>

#include "analysis/analyzer.hpp"
#include "common/logging.hpp"

namespace evps {

namespace {
LinkBatcher::Config resolve_link_config(BrokerConfig& config) {
  // 0 resolves the EVPS_LINK_BATCH environment variable (default 1), stored
  // back so config() reports the effective value — the matcher_threads
  // pattern.
  if (config.link_batch_size == 0) config.link_batch_size = default_link_batch_size();
  return LinkBatcher::Config{config.link_batch_size, config.link_flush_deadline,
                             config.measure_link_bytes};
}
}  // namespace

Broker::Broker(std::string name, Network& net, BrokerConfig config)
    : net_(net),
      name_(std::move(name)),
      config_(config),
      engine_(make_engine(config.engine)),
      link_batcher_(net, *this, resolve_link_config(config_), [this](NodeId dest) {
        if (client_neighbors_.contains(dest)) return LinkKind::kClient;
        if (broker_neighbors_.contains(dest)) return LinkKind::kBroker;
        return LinkKind::kUnknown;
      }) {
  if (config_.covering) {
    covering_ = std::make_unique<CoveringIndex>(config_.relational_covering);
  }
  net_.attach(*this);
}

Broker::~Broker() {
  *alive_ = false;
  for (auto& monitor : monitors_) monitor.cancel();
}

void Broker::connect(Broker& a, Broker& b, Duration latency) {
  a.net_.connect(a.node_id(), b.node_id(), latency);
  a.broker_neighbors_.insert(b.node_id());
  b.broker_neighbors_.insert(a.node_id());
}

void Broker::accept_client(NodeId client) { client_neighbors_.insert(client); }

void Broker::set_variable(const std::string& name, double value) {
  set_variable_local(name, value);
  for (const auto neighbor : broker_neighbors_) {
    send_to(neighbor, VarUpdateMsg{name, value});
  }
}

void Broker::set_variable_local(const std::string& name, double value) {
  registry_.set(name, value, now());
}

TimerHandle Broker::enable_load_monitor(const std::string& name, Duration interval,
                                        SimTime until) {
  set_variable_local(name, 0.0);
  auto last = std::make_shared<std::uint64_t>(stats_.deliveries + stats_.pubs_forwarded);
  TimerHandle handle = net_.simulator().every(
      now() + interval, interval, until, [this, name, interval, last](SimTime) {
        const std::uint64_t total = stats_.deliveries + stats_.pubs_forwarded;
        const double rate =
            static_cast<double>(total - *last) / interval.count_seconds();
        *last = total;
        set_variable_local(name, rate);
      });
  monitors_.push_back(handle);
  return handle;
}

void Broker::on_message(const Envelope& env) {
  ++stats_.received_total;
  if (is_subscription_related(env.msg)) ++stats_.subscription_msgs;
  std::visit(
      [&](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (!std::is_same_v<T, PublishMsg> && !std::is_same_v<T, PublishBatchMsg>) {
          // Matching barrier: publications buffered for a batched match
          // (BrokerConfig::batch_size) arrived before this control message,
          // so they must match against the pre-control engine and variable
          // state — exactly what the per-message path would have done. Flush
          // them before applying anything that can change matching (a
          // same-instant variable update would otherwise be visible to the
          // deferred batch).
          flush_pending_publications();
        }
        if constexpr (std::is_same_v<T, SubscribeMsg>) {
          handle_subscribe(msg, env.from);
        } else if constexpr (std::is_same_v<T, UnsubscribeMsg>) {
          handle_unsubscribe(msg, env.from);
        } else if constexpr (std::is_same_v<T, SubscriptionUpdateMsg>) {
          handle_update(msg, env.from);
        } else if constexpr (std::is_same_v<T, PublishMsg>) {
          handle_publish(msg, env.from);
        } else if constexpr (std::is_same_v<T, PublishBatchMsg>) {
          handle_publish_batch(msg, env.from);
        } else if constexpr (std::is_same_v<T, AdvertiseMsg>) {
          handle_advertise(msg, env.from);
        } else if constexpr (std::is_same_v<T, UnadvertiseMsg>) {
          handle_unadvertise(msg, env.from);
        } else if constexpr (std::is_same_v<T, VarUpdateMsg>) {
          handle_var_update(msg, env.from);
        } else {
          EVPS_WARN(name_, "unexpected message kind: ", message_kind(env.msg));
        }
      },
      env.msg);
}

std::vector<NodeId> Broker::subscription_forward_targets(const Subscription& sub,
                                                         NodeId from) const {
  std::vector<NodeId> targets;
  if (config_.routing == RoutingMode::kFlooding) {
    for (const auto neighbor : broker_neighbors_) {
      if (neighbor != from) targets.push_back(neighbor);
    }
    return targets;
  }
  // Advertisement routing: forward only towards neighbours that are on the
  // path of an intersecting advertisement.
  std::set<NodeId> chosen;
  for (const auto& [id, entry] : adverts_) {
    const auto& [adv, last_hop] = entry;
    if (last_hop == from || chosen.contains(last_hop)) continue;
    if (!broker_neighbors_.contains(last_hop)) continue;
    if (adv->intersects(sub)) chosen.insert(last_hop);
  }
  targets.assign(chosen.begin(), chosen.end());
  return targets;
}

void Broker::handle_subscribe(const SubscribeMsg& msg, NodeId from) {
  ++stats_.subscribes;
  if (!msg.sub) return;
  if (engine_->contains(msg.sub->id())) return;  // duplicate (cycle guard)
  const SubscriptionPtr install = analyze_incoming(msg.sub);
  if (!install) return;  // rejected: not installed, not forwarded
  engine_->add(install, from, *this, broker_neighbors_.contains(from));
  // Forward what was installed: a folded subscription is provably equivalent
  // and lets downstream brokers skip the lazy path too.
  auto targets = subscription_forward_targets(*install, from);
  CoveringIndex::AddResult cover;
  if (covering_) {
    cover = covering_->add(*install, registry_);
    if (cover.parent.valid()) {
      // Covered: suppress exactly the directions the root already reaches —
      // publications matching this subscription are already routed back here
      // through the root. Other directions (e.g. the one the root arrived
      // from) still need the subscription itself.
      const auto root_it = sub_forwards_.find(cover.parent);
      if (root_it != sub_forwards_.end()) {
        const auto& root_fwd = root_it->second;
        const auto suppressed = [&root_fwd](NodeId target) {
          return std::find(root_fwd.begin(), root_fwd.end(), target) != root_fwd.end();
        };
        const auto new_end = std::remove_if(targets.begin(), targets.end(), suppressed);
        covering_counters_.suppressed_forwards +=
            static_cast<std::uint64_t>(targets.end() - new_end);
        targets.erase(new_end, targets.end());
      }
    }
  }
  for (const auto target : targets) {
    send_to(target, SubscribeMsg{install});
  }
  const auto [fwd_it, inserted] = sub_forwards_.emplace(install->id(), std::move(targets));
  (void)inserted;
  // Retract newly covered roots after the coverer's subscribes are queued:
  // per-link FIFO delivers the coverer first, so upstream never has a gap.
  if (covering_ && !cover.demoted.empty()) retract_demoted(cover.demoted, fwd_it->second);
}

void Broker::resubscribe_promoted(const std::vector<SubscriptionId>& promoted) {
  for (const SubscriptionId id : promoted) {
    const SubscriptionPtr sub = engine_->subscription_of(id);
    if (!sub) continue;
    auto& forwards = sub_forwards_[id];
    for (const auto target : subscription_forward_targets(*sub, engine_->destination_of(id))) {
      if (std::find(forwards.begin(), forwards.end(), target) != forwards.end()) continue;
      send_to(target, SubscribeMsg{sub});
      forwards.push_back(target);
      ++covering_counters_.resubscribes;
    }
  }
}

void Broker::retract_demoted(const std::vector<SubscriptionId>& demoted,
                             const std::vector<NodeId>& coverer_forwards) {
  for (const SubscriptionId id : demoted) {
    const auto it = sub_forwards_.find(id);
    if (it == sub_forwards_.end()) continue;
    auto& forwards = it->second;
    for (auto fit = forwards.begin(); fit != forwards.end();) {
      if (std::find(coverer_forwards.begin(), coverer_forwards.end(), *fit) ==
          coverer_forwards.end()) {
        ++fit;  // the coverer does not reach this direction: keep ours
        continue;
      }
      send_to(*fit, UnsubscribeMsg{id});
      ++covering_counters_.demote_unsubscribes;
      fit = forwards.erase(fit);
    }
  }
}

SubscriptionPtr Broker::analyze_incoming(const SubscriptionPtr& sub) {
  if (config_.analysis == AnalysisPolicy::kOff || !sub->is_evolving()) return sub;
  ++analysis_counters_.analyzed;
  std::vector<const Advertisement*> ads;
  if (config_.routing == RoutingMode::kAdvertisement) {
    ads.reserve(adverts_.size());
    for (const auto& [id, entry] : adverts_) ads.push_back(entry.first.get());
  }
  const SubscriptionAnalysis analysis = analyze_subscription(*sub, registry_, ads);
  const bool enforce = config_.analysis == AnalysisPolicy::kEnforce;
  switch (analysis.verdict) {
    case Verdict::kMalformed:
      ++analysis_counters_.rejected_malformed;
      EVPS_WARN(name_, "subscription ", sub->id(), " malformed: ", analysis.diagnostic);
      if (enforce) return nullptr;
      break;
    case Verdict::kUnsatisfiable:
      ++analysis_counters_.rejected_unsatisfiable;
      EVPS_WARN(name_, "subscription ", sub->id(), " unsatisfiable: ", analysis.diagnostic);
      if (enforce) return nullptr;
      break;
    case Verdict::kRelUnsatisfiable:
      ++analysis_counters_.rejected_rel_unsatisfiable;
      EVPS_WARN(name_, "subscription ", sub->id(),
                " relationally unsatisfiable: ", analysis.diagnostic);
      if (enforce) return nullptr;
      break;
    case Verdict::kAdUncovered:
      // Satisfiable, so it stays installed (a covering advertisement may
      // still arrive) — but flagged: it cannot match today.
      ++analysis_counters_.flagged_uncovered;
      EVPS_WARN(name_, "subscription ", sub->id(), " uncovered: ", analysis.diagnostic);
      break;
    case Verdict::kConstant:
      // Folding anchors bounds at broker-local install-time state; under
      // snapshot consistency a publication may legitimately evaluate under
      // an earlier snapshot, so keep the lazy path there.
      if (enforce && !config_.snapshot_consistency) {
        ++analysis_counters_.folded_constant;
        return std::make_shared<const Subscription>(*analysis.folded);
      }
      break;
    case Verdict::kRelRedundant:
      // Advisory only: behaviour is identical with or without the entailed
      // predicate, so the subscription installs as-is.
      ++analysis_counters_.flagged_redundant;
      EVPS_WARN(name_, "subscription ", sub->id(), " redundant: ", analysis.diagnostic);
      break;
    case Verdict::kOk:
      break;
  }
  return sub;
}

void Broker::handle_unsubscribe(const UnsubscribeMsg& msg, NodeId from) {
  ++stats_.unsubscribes;
  if (!engine_->contains(msg.id)) return;
  CoveringIndex::RemoveResult uncovered;
  if (covering_) uncovered = covering_->remove(msg.id);
  engine_->remove(msg.id, *this);
  // Uncover-on-remove: re-disseminate promoted subscriptions BEFORE the
  // coverer's unsubscribe so upstream brokers (per-link FIFO) install them
  // while the coverer is still routing — delivery never has a gap.
  if (covering_) resubscribe_promoted(uncovered.promoted);
  const auto it = sub_forwards_.find(msg.id);
  if (it != sub_forwards_.end()) {
    for (const auto target : it->second) {
      if (target != from) send_to(target, UnsubscribeMsg{msg.id});
    }
    sub_forwards_.erase(it);
  }
}

void Broker::handle_update(const SubscriptionUpdateMsg& msg, NodeId from) {
  ++stats_.sub_updates;
  if (!engine_->contains(msg.id)) return;
  // Reject oversized value lists before touching the covering index:
  // engine_->update throws on them, and by that point the index entry would
  // already be gone while the subscription stays installed — a desync that
  // silently loses the promoted children's re-dissemination later.
  if (const SubscriptionPtr current = engine_->subscription_of(msg.id);
      current && msg.new_values.size() > current->predicates().size()) {
    EVPS_WARN(name_, "subscription update ", msg.id,
              " carries more values than predicates; dropped");
    return;
  }
  // A parametric update changes the match set, so every covering relation
  // involving this subscription is void: retract it from the forest (its
  // covered children resubscribe upstream before the update propagates) and
  // re-analyze it under the new predicates afterwards.
  CoveringIndex::RemoveResult uncovered;
  if (covering_) uncovered = covering_->remove(msg.id);
  if (!engine_->update(msg.id, msg.new_values, *this)) return;
  if (covering_) resubscribe_promoted(uncovered.promoted);
  const auto it = sub_forwards_.find(msg.id);
  if (it != sub_forwards_.end()) {
    for (const auto target : it->second) {
      if (target != from) send_to(target, msg);
    }
  }
  if (!covering_) return;
  const SubscriptionPtr sub = engine_->subscription_of(msg.id);
  const CoveringIndex::AddResult cover = covering_->add(*sub, registry_);
  if (!cover.parent.valid()) {
    // The updated subscription stands as a root: it must reach its full
    // target set, so directions suppressed under its old coverer receive the
    // updated subscription as a fresh subscribe (directions already
    // forwarded-to got the update message above). Roots it newly covers are
    // retracted behind it, exactly as on a covering subscribe — their
    // children were suppressed before and stay suppressed.
    resubscribe_promoted({msg.id});
    if (!cover.demoted.empty()) retract_demoted(cover.demoted, sub_forwards_[msg.id]);
    return;
  }
  // Re-covered — possibly by a DIFFERENT root. The forwards on record were
  // suppressed against the OLD root's reach, and the new parent never
  // forwards towards its own origin direction, so keeping them unchanged
  // can leave a direction the updated predicates now need permanently
  // unserved. Recompute the full target set and forward the updated
  // subscription everywhere the new parent does not already reach.
  auto& forwards = sub_forwards_[msg.id];
  const auto parent_it = sub_forwards_.find(cover.parent);
  const std::vector<NodeId>* parent_fwd =
      parent_it != sub_forwards_.end() ? &parent_it->second : nullptr;
  for (const auto target :
       subscription_forward_targets(*sub, engine_->destination_of(msg.id))) {
    if (std::find(forwards.begin(), forwards.end(), target) != forwards.end()) continue;
    if (parent_fwd != nullptr &&
        std::find(parent_fwd->begin(), parent_fwd->end(), target) != parent_fwd->end()) {
      ++covering_counters_.suppressed_forwards;
      continue;
    }
    send_to(target, SubscribeMsg{sub});
    forwards.push_back(target);
    ++covering_counters_.resubscribes;
  }
}

void Broker::send_to(NodeId to, Message msg) {
  // Barrier: publications already buffered towards `to` were (in the
  // per-message path) sent before this message, so flush them first —
  // per-link FIFO then preserves the exact relative order.
  link_batcher_.barrier(to);
  net_.send(node_id(), to, std::move(msg));
}

void Broker::handle_publish(PublishMsg msg, NodeId from) {
  ++stats_.publications;
  if (client_neighbors_.contains(from)) {
    // Entry-point broker (Section V-D): stamp the entry time and, in
    // snapshot-consistency mode, record the current variable values. The
    // publication is shared down every forwarding path, so mutate a private
    // clone (copy-on-write) — the only deep copy an event ever pays.
    auto stamped = std::make_shared<Publication>(*msg.pub);
    stamped->set_entry_time(now());
    msg.pub = std::move(stamped);
    if (config_.snapshot_consistency) {
      auto snapshot = std::make_shared<VariableSnapshot>();
      registry_.for_each_latest(
          [&snapshot](VarId var, double value) { snapshot->emplace(var, value); });
      msg.snapshot = std::move(snapshot);
    }
  }

  if (msg.snapshot != nullptr || config_.batch_size <= 1) {
    // Immediate path: snapshot-carrying publications always match under
    // their own snapshot; batch_size 1 keeps the per-publication matcher
    // call (the link batcher may still group the outgoing sends).
    std::vector<NodeId> destinations;
    engine_->match(*msg.pub, msg.snapshot.get(), *this, destinations);
    forward_publication(msg, from, destinations);
    return;
  }
  enqueue_publication(std::move(msg), from);
}

void Broker::handle_publish_batch(const PublishBatchMsg& msg, NodeId from) {
  // Batches only travel broker-to-broker, so no entry stamping or snapshot
  // recording happens here; stats count events, not envelopes, keeping
  // every counter invariant under batching.
  stats_.publications += msg.pubs.size();
  if (config_.batch_size <= 1) {
    // The arrival is already a batch: match it with one engine call anyway
    // (exact by the match_batch contract), then route per event.
    for (const auto& pub : msg.pubs) pending_pubs_.emplace_back(PublishMsg{pub, nullptr}, from);
    flush_pending_publications();
    return;
  }
  for (const auto& pub : msg.pubs) enqueue_publication(PublishMsg{pub, nullptr}, from);
}

void Broker::enqueue_publication(PublishMsg msg, NodeId from) {
  pending_pubs_.emplace_back(std::move(msg), from);
  if (pending_pubs_.size() >= config_.batch_size) {
    flush_pending_publications();
  } else if (!flush_scheduled_) {
    flush_scheduled_ = true;
    // Zero-delay flush: it runs in the same virtual instant, after every
    // already-queued same-time event (simulator FIFO), so publications
    // arriving in one instant share a batch and nothing is delayed.
    schedule(Duration::zero(), [this, alive = alive_] {
      if (*alive) flush_pending_publications();
    });
  }
}

void Broker::flush_pending_publications() {
  flush_scheduled_ = false;
  if (pending_pubs_.empty()) return;
  batch_ptrs_.clear();
  for (const auto& [msg, from] : pending_pubs_) batch_ptrs_.push_back(msg.pub.get());
  engine_->match_batch(std::span<const Publication* const>(batch_ptrs_), nullptr, *this,
                       batch_dests_);
  for (std::size_t i = 0; i < pending_pubs_.size(); ++i) {
    forward_publication(pending_pubs_[i].first, pending_pubs_[i].second, batch_dests_[i]);
  }
  pending_pubs_.clear();
}

void Broker::forward_publication(const PublishMsg& msg, NodeId from,
                                 const std::vector<NodeId>& destinations) {
  if (msg.snapshot != nullptr) {
    // Snapshot-carrying publications bypass link batching (each one
    // evaluates under its own snapshot downstream); send_to's barrier keeps
    // per-link order intact.
    for (const auto dest : destinations) {
      if (dest == from) continue;  // never route back where it came from
      if (client_neighbors_.contains(dest)) {
        send_to(dest, DeliveryMsg{msg.pub});
        ++stats_.deliveries;
      } else if (broker_neighbors_.contains(dest)) {
        send_to(dest, msg);
        ++stats_.pubs_forwarded;
      }
    }
    return;
  }
  for (const auto dest : destinations) {
    if (dest == from) continue;  // never route back where it came from
    switch (link_batcher_.enqueue(dest, msg.pub)) {
      case LinkKind::kClient: ++stats_.deliveries; break;
      case LinkKind::kBroker: ++stats_.pubs_forwarded; break;
      case LinkKind::kUnknown: break;  // not a neighbour: dropped
    }
  }
}

void Broker::handle_advertise(const AdvertiseMsg& msg, NodeId from) {
  ++stats_.advertisements;
  if (!msg.adv) return;
  if (adverts_.contains(msg.adv->id())) return;  // duplicate (cycle guard)
  adverts_.emplace(msg.adv->id(), std::make_pair(msg.adv, from));
  // Advertisements are flooded.
  for (const auto neighbor : broker_neighbors_) {
    if (neighbor != from) send_to(neighbor, msg);
  }
  if (config_.routing != RoutingMode::kAdvertisement) return;
  // Catch-up: installed subscriptions that intersect the new advertisement
  // must now also be forwarded towards it.
  if (!broker_neighbors_.contains(from)) return;
  for (auto& [sub_id, forwards] : sub_forwards_) {
    if (std::find(forwards.begin(), forwards.end(), from) != forwards.end()) continue;
    if (engine_->destination_of(sub_id) == from) continue;  // sub came from that direction
    const auto sub = engine_->subscription_of(sub_id);
    if (!sub || !msg.adv->intersects(*sub)) continue;
    send_to(from, SubscribeMsg{sub});
    forwards.push_back(from);
  }
}

void Broker::handle_unadvertise(const UnadvertiseMsg& msg, NodeId from) {
  if (adverts_.erase(msg.id) == 0) return;
  for (const auto neighbor : broker_neighbors_) {
    if (neighbor != from) send_to(neighbor, msg);
  }
}

void Broker::handle_var_update(const VarUpdateMsg& msg, NodeId from) {
  ++stats_.var_updates;
  registry_.set(msg.name, msg.value, now());
  for (const auto neighbor : broker_neighbors_) {
    if (neighbor != from) send_to(neighbor, msg);
  }
}

audit::BrokerState Broker::export_snapshot() const {
  audit::BrokerState out;
  out.name = name_;
  out.node = node_id();
  out.routing = config_.routing == RoutingMode::kAdvertisement ? "advertisement" : "flooding";
  out.covering_enabled = config_.covering;
  out.broker_neighbors.assign(broker_neighbors_.begin(), broker_neighbors_.end());
  out.client_neighbors.assign(client_neighbors_.begin(), client_neighbors_.end());
  for (const auto& [id, forwards] : sub_forwards_) {
    out.routes.push_back(audit::RouteEntry{id, forwards});
  }
  for (const auto& [id, entry] : adverts_) {
    out.adverts.push_back(audit::AdvertEntry{id, entry.first, entry.second});
  }
  if (covering_) {
    covering_->for_each_entry([this, &out](SubscriptionId id, SubscriptionId parent) {
      out.forest.push_back(audit::ForestNode{id, parent, covering_->children_of(id)});
    });
  }
  engine_->export_audit_state(out.engine);
  out.pending_match_batch = pending_pubs_.size();
  link_batcher_.for_each_pending([&out](NodeId dest, std::size_t pending) {
    out.pending_links.push_back(audit::PendingLink{dest, pending});
  });
  // Variable state: every id with a declared range or a recorded value.
  std::set<VarId> vars;
  for (const VarId v : registry_.ids()) vars.insert(v);
  for (const VarId v : registry_.declared_ids()) vars.insert(v);
  for (const VarId v : vars) {
    audit::VariableState vs;
    vs.name = VariableTable::instance().name(v);
    if (const auto range = registry_.declared_range(v)) {
      vs.declared = true;
      vs.lo = range->first;
      vs.hi = range->second;
    }
    if (const auto value = registry_.get(v)) {
      vs.has_value = true;
      vs.value = *value;
    }
    out.variables.push_back(std::move(vs));
  }
  return out;
}

}  // namespace evps
