file(REMOVE_RECURSE
  "CMakeFiles/test_engine_equivalence.dir/test_engine_equivalence.cpp.o"
  "CMakeFiles/test_engine_equivalence.dir/test_engine_equivalence.cpp.o.d"
  "test_engine_equivalence"
  "test_engine_equivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
