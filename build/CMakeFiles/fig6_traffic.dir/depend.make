# Empty dependencies file for fig6_traffic.
# This may be replaced when dependencies are built.
