# Empty compiler generated dependencies file for test_publication.
# This may be replaced when dependencies are built.
