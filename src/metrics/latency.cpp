#include "metrics/latency.hpp"

namespace evps {

Summary collect_delivery_latency(const Overlay& overlay) {
  Summary summary;
  for (const auto& client : overlay.clients()) {
    for (const auto& d : client->deliveries()) {
      summary.record((d.when - d.pub.entry_time()).count_seconds());
    }
  }
  return summary;
}

std::map<ClientId, Summary> collect_delivery_latency_per_client(const Overlay& overlay) {
  std::map<ClientId, Summary> out;
  for (const auto& client : overlay.clients()) {
    if (client->deliveries().empty()) continue;
    auto& summary = out[client->id()];
    for (const auto& d : client->deliveries()) {
      summary.record((d.when - d.pub.entry_time()).count_seconds());
    }
  }
  return out;
}

}  // namespace evps
