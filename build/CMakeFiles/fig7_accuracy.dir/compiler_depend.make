# Empty compiler generated dependencies file for fig7_accuracy.
# This may be replaced when dependencies are built.
