// Real-time demo: the paper's threaded architecture (Section V-A) running
// against the wall clock — a VES engine whose versions evolve in real time
// on the host's worker thread, exactly like PADRES's handler threads.
//
//   $ ./realtime_demo
#include <iostream>
#include <thread>

#include "evolving/ves_engine.hpp"
#include "message/codec.hpp"
#include "realtime/realtime_host.hpp"

using namespace evps;

int main() {
  RealTimeHost host;
  EngineConfig config;
  config.kind = EngineKind::kVes;
  VesEngine engine{config};

  std::cout << "Installing evolving subscription: x >= -3 + t; x <= 3 + t (MEI 200 ms)\n";
  host.invoke([&] {
    Subscription sub = parse_subscription("[mei=0.2] x >= -3 + t; x <= 3 + t");
    sub.set_id(SubscriptionId{1});
    sub.set_epoch(host.now());
    engine.add(std::make_shared<const Subscription>(std::move(sub)), NodeId{1}, host);
  });

  const Publication probe = parse_publication("x = 4; action = 'pickup'");
  std::cout << "Probing with x = 4 every 250 ms; the window slides by 1 unit/s...\n";
  for (int i = 0; i < 10; ++i) {
    bool matched = false;
    double window_t = 0;
    host.invoke([&] {
      std::vector<NodeId> dests;
      engine.match(probe, nullptr, host, dests);
      matched = !dests.empty();
      window_t = host.now().seconds();
    });
    std::cout << "  t=" << window_t << "s  window=[" << (-3 + window_t) << ", "
              << (3 + window_t) << "]  x=4 " << (matched ? "MATCH" : "no match") << "\n";
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
  }

  std::uint64_t evolutions = 0;
  host.invoke([&] { evolutions = engine.costs().evolutions; });
  std::cout << "Versions evolved " << evolutions
            << " times on the worker thread; the subscriber sent exactly one message.\n";
  return 0;
}
