#include "expr/variable_registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace evps {

void VariableRegistry::set(std::string_view name, double value, SimTime when) {
  auto it = vars_.find(name);
  if (it == vars_.end()) {
    it = vars_.emplace(std::string(name), History{}).first;
  }
  auto& changes = it->second.changes;
  if (!changes.empty() && when < changes.back().first) {
    throw std::invalid_argument("variable '" + std::string(name) +
                                "' history must be appended in time order");
  }
  if (!changes.empty() && when == changes.back().first) {
    changes.back().second = value;  // same-instant overwrite
  } else {
    changes.emplace_back(when, value);
  }
  ++global_version_;
  for (auto& [id, listener] : listeners_) {
    listener(it->first, value, when);
  }
}

bool VariableRegistry::has(std::string_view name) const noexcept {
  return vars_.find(name) != vars_.end();
}

std::optional<double> VariableRegistry::get(std::string_view name) const noexcept {
  const auto it = vars_.find(name);
  if (it == vars_.end() || it->second.changes.empty()) return std::nullopt;
  return it->second.changes.back().second;
}

std::optional<double> VariableRegistry::get_at(std::string_view name, SimTime when) const noexcept {
  const auto it = vars_.find(name);
  if (it == vars_.end() || it->second.changes.empty()) return std::nullopt;
  const auto& changes = it->second.changes;
  // Last change with time <= when.
  auto pos = std::upper_bound(changes.begin(), changes.end(), when,
                              [](SimTime t, const auto& entry) { return t < entry.first; });
  if (pos == changes.begin()) return std::nullopt;  // variable did not exist yet
  return std::prev(pos)->second;
}

std::uint64_t VariableRegistry::version(std::string_view name) const noexcept {
  const auto it = vars_.find(name);
  return it == vars_.end() ? 0 : it->second.changes.size();
}

std::optional<SimTime> VariableRegistry::last_change(std::string_view name) const noexcept {
  const auto it = vars_.find(name);
  if (it == vars_.end() || it->second.changes.empty()) return std::nullopt;
  return it->second.changes.back().first;
}

std::vector<std::string> VariableRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(vars_.size());
  for (const auto& [name, history] : vars_) out.push_back(name);
  return out;
}

VariableRegistry::ListenerId VariableRegistry::add_listener(Listener listener) {
  const ListenerId id = next_listener_++;
  listeners_.emplace(id, std::move(listener));
  return id;
}

void VariableRegistry::remove_listener(ListenerId id) { listeners_.erase(id); }

double EvalScope::lookup(std::string_view name) const {
  if (const auto it = overrides_.find(name); it != overrides_.end()) return it->second;
  if (name == kElapsedTimeVar) return (now_ - epoch_).count_seconds();
  if (registry_ != nullptr) {
    if (const auto v = registry_->get_at(name, now_)) return *v;
  }
  throw UnboundVariableError(name);
}

bool EvalScope::has(std::string_view name) const {
  if (overrides_.contains(name)) return true;
  if (name == kElapsedTimeVar) return true;
  return registry_ != nullptr && registry_->get_at(name, now_).has_value();
}

}  // namespace evps
