# Empty dependencies file for test_sim_time.
# This may be replaced when dependencies are built.
