file(REMOVE_RECURSE
  "CMakeFiles/test_codec_property.dir/test_codec_property.cpp.o"
  "CMakeFiles/test_codec_property.dir/test_codec_property.cpp.o.d"
  "test_codec_property"
  "test_codec_property.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_codec_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
