file(REMOVE_RECURSE
  "libevps_common.a"
)
