// Persistent fork-join worker pool for the sharded matching hot path.
//
// The pool executes one *job* at a time: run(n, task, ctx) makes task(ctx, i)
// execute exactly once for every index i in [0, n), spread across the worker
// threads and the calling thread, and returns when all indexes completed.
// Callers from different threads are serialised (one job in flight), so a
// single process-wide pool can back every broker engine without the engines
// coordinating.
//
// Design constraints, in order:
//   * Determinism — the pool only distributes *indexes*; tasks own disjoint
//     state (one matcher shard each) and all merging happens on the caller
//     after run() returns, so results never depend on scheduling.
//   * No steady-state allocation — the job descriptor is a function pointer
//     plus a context pointer (no std::function), and completion tracking is
//     two atomics. A publication match dispatch touches the heap zero times.
//   * TSan-clean — publication of the job descriptor is ordered by the
//     release store of the job generation and the acquire loads in the
//     workers; completion by the acq_rel fetch_add chain on done_. Sleeps
//     use a mutex/condvar pair with the predicate re-checked under the lock.
//   * Safe under nesting — a task that (indirectly) calls run() again
//     executes the nested job inline on its own thread instead of
//     deadlocking on the single-job serialisation.
//
// Workers spin briefly before sleeping so that back-to-back match dispatches
// (the per-publication pattern) do not pay a futex wake each time.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace evps {

class ThreadPool {
 public:
  /// Job body: called once per index with the caller-supplied context.
  using Task = void (*)(void* ctx, std::size_t index);

  /// Spawns `threads` workers (0 is valid: every job runs inline on the
  /// caller, which keeps single-core and test configurations trivial).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Workers plus the participating caller.
  [[nodiscard]] std::size_t concurrency() const noexcept { return workers_.size() + 1; }

  /// Execute task(ctx, i) for every i in [0, n); returns when all are done.
  /// The first exception thrown by any index is rethrown on the caller after
  /// every claimed index finished. Thread-safe; concurrent callers queue.
  void run(std::size_t n, Task task, void* ctx);

  /// Convenience wrapper: fn must be an lvalue callable taking std::size_t.
  template <class F>
  void run_indexed(std::size_t n, F& fn) {
    static_assert(std::is_invocable_v<F&, std::size_t>);
    run(
        n, [](void* ctx, std::size_t i) { (*static_cast<F*>(ctx))(i); },
        const_cast<std::remove_const_t<F>*>(&fn));
  }

  /// Process-wide pool shared by all sharded matchers: hardware_concurrency
  /// minus the caller, clamped to [1, 16] workers, created on first use.
  [[nodiscard]] static ThreadPool& shared();

 private:
  void worker_loop();
  void execute(Task task, void* ctx, std::size_t n);

  // Job descriptor: written by run() before the gen_ release store, read by
  // workers after their acquire load of gen_ (ordinary fields are fine, the
  // generation handshake orders them).
  Task task_ = nullptr;
  void* ctx_ = nullptr;
  std::size_t n_ = 0;
  std::atomic<std::uint64_t> gen_{0};
  std::atomic<std::size_t> next_{0};    // next unclaimed index
  std::atomic<std::size_t> done_{0};    // completed indexes
  std::atomic<std::size_t> active_{0};  // workers inside the claim loop
  std::atomic<bool> stopping_{false};

  std::mutex mu_;                // guards the condvars' predicates
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::exception_ptr error_;     // first task exception; guarded by mu_

  std::mutex run_mu_;            // serialises concurrent run() callers
  std::vector<std::thread> workers_;
};

}  // namespace evps
