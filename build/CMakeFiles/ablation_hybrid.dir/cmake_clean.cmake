file(REMOVE_RECURSE
  "CMakeFiles/ablation_hybrid.dir/bench/ablation_hybrid.cpp.o"
  "CMakeFiles/ablation_hybrid.dir/bench/ablation_hybrid.cpp.o.d"
  "bench/ablation_hybrid"
  "bench/ablation_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
