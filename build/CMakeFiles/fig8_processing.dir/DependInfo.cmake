
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig8_processing.cpp" "CMakeFiles/fig8_processing.dir/bench/fig8_processing.cpp.o" "gcc" "CMakeFiles/fig8_processing.dir/bench/fig8_processing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/evps_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/evps_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/broker/CMakeFiles/evps_broker.dir/DependInfo.cmake"
  "/root/repo/build/src/evolving/CMakeFiles/evps_evolving.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/evps_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/message/CMakeFiles/evps_message.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/evps_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/evps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/evps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
