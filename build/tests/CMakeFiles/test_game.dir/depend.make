# Empty dependencies file for test_game.
# This may be replaced when dependencies are built.
