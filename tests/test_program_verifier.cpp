// ExprProgram verifier (analysis/verifier.hpp): hand-assembled malformed
// programs must be rejected with a pinpointed diagnostic, every
// compiler-produced program must pass, and the engine install gate must
// refuse to install state around a program that fails verification.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/verifier.hpp"
#include "common/rng.hpp"
#include "evolving/engine.hpp"
#include "expr/ast.hpp"
#include "expr/program.hpp"
#include "test_util.hpp"

namespace evps {
namespace {

using Op = ExprProgram::Op;
using Insn = ExprProgram::Insn;

Insn push(double k) { return Insn{Op::kPushConst, 0, kInvalidVarId, k}; }
Insn load(VarId var) { return Insn{Op::kLoadVar, 0, var, 0.0}; }
Insn op(Op o, std::uint32_t argc = 0) { return Insn{o, argc, kInvalidVarId, 0.0}; }

TEST(ProgramVerifier, EmptyProgramRejected) {
  const auto r = verify_program(ExprProgram{});
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.message.find("empty"), std::string::npos);
}

TEST(ProgramVerifier, StackUnderflowRejected) {
  // kAdd with a single operand on the stack.
  const auto prog = ExprProgram::assemble({push(1.0), op(Op::kAdd)}, 2);
  const auto r = verify_program(prog);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.insn_index, 1u);
  EXPECT_NE(r.message.find("underflow"), std::string::npos);

  // Unary with nothing at all.
  const auto r2 = verify_program(ExprProgram::assemble({op(Op::kNeg)}, 1));
  ASSERT_FALSE(r2.ok);
  EXPECT_EQ(r2.insn_index, 0u);
}

TEST(ProgramVerifier, BadArgcRejected) {
  // kMin with argc == 0 can never fold anything.
  const auto zero = ExprProgram::assemble({push(1.0), op(Op::kMin, 0)}, 1);
  ASSERT_FALSE(verify_program(zero).ok);
  // kClamp must pop exactly 3.
  const auto clamp =
      ExprProgram::assemble({push(1.0), push(2.0), op(Op::kClamp, 2)}, 2);
  ASSERT_FALSE(verify_program(clamp).ok);
  // kStep must pop exactly 1.
  const auto step = ExprProgram::assemble({push(1.0), push(2.0), op(Op::kStep, 2)}, 2);
  ASSERT_FALSE(verify_program(step).ok);
  // kMin needing more operands than are on the stack.
  const auto deep = ExprProgram::assemble({push(1.0), push(2.0), op(Op::kMin, 3)}, 2);
  ASSERT_FALSE(verify_program(deep).ok);
}

TEST(ProgramVerifier, UnknownOpcodeRejected) {
  Insn bogus;
  bogus.op = static_cast<Op>(200);
  const auto r = verify_program(ExprProgram::assemble({bogus}, 1));
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.message.find("opcode"), std::string::npos);
}

TEST(ProgramVerifier, UnregisteredVarIdRejected) {
  // kInvalidVarId and ids past the interning table both fail.
  const auto invalid = ExprProgram::assemble({load(kInvalidVarId)}, 1);
  ASSERT_FALSE(verify_program(invalid).ok);
  const auto past_end =
      ExprProgram::assemble({load(static_cast<VarId>(VariableTable::instance().size()))}, 1);
  const auto r = verify_program(past_end);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.message.find("VarId"), std::string::npos);
}

TEST(ProgramVerifier, WrongFinalDepthRejected) {
  // Two values left on the stack: not a single-result program.
  const auto two = ExprProgram::assemble({push(1.0), push(2.0)}, 2);
  const auto r = verify_program(two);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.insn_index, 2u);  // whole-program fault reports size()
}

TEST(ProgramVerifier, UnderstatedMaxStackRejected) {
  // Structurally fine postfix for 1 + 2, but max_stack claims 1.
  const auto prog = ExprProgram::assemble({push(1.0), push(2.0), op(Op::kAdd)}, 1);
  const auto r = verify_program(prog);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.message.find("max_stack"), std::string::npos);
  // The same code with an honest (or generous) bound passes.
  EXPECT_TRUE(verify_program(ExprProgram::assemble({push(1.0), push(2.0), op(Op::kAdd)}, 2)).ok);
  EXPECT_TRUE(verify_program(ExprProgram::assemble({push(1.0), push(2.0), op(Op::kAdd)}, 8)).ok);
}

TEST(ProgramVerifier, VerifyOrThrowCarriesDiagnostic) {
  const auto bad = ExprProgram::assemble({push(1.0), op(Op::kAdd)}, 2);
  try {
    verify_or_throw(bad);
    FAIL() << "expected VerifyError";
  } catch (const VerifyError& e) {
    EXPECT_EQ(e.insn_index(), 1u);
    EXPECT_NE(std::string(e.what()).find("verification failed"), std::string::npos);
  }
}

// Mirror of test_expr_compile.cpp's generator: anything the compiler can
// produce must verify, across every node kind and >1000 seeds.
ExprPtr random_expr(Rng& rng, int depth) {
  if (depth <= 0 || rng.bernoulli(0.25)) {
    const int pick = static_cast<int>(rng.uniform_int(0, 2));
    if (pick == 0) return Expr::constant(rng.uniform(-8.0, 8.0));
    if (pick == 1) return Expr::variable("t");
    return Expr::variable("pv_var" + std::to_string(rng.uniform_int(0, 5)));
  }
  switch (rng.uniform_int(0, 5)) {
    case 0:
    case 1:
      return Expr::binary(static_cast<BinaryOp>(rng.uniform_int(0, 5)),
                          random_expr(rng, depth - 1), random_expr(rng, depth - 1));
    case 2:
      return Expr::unary(static_cast<UnaryOp>(rng.uniform_int(0, 7)),
                         random_expr(rng, depth - 1));
    case 3: {
      std::vector<ExprPtr> args;
      const int n = static_cast<int>(rng.uniform_int(1, 4));
      for (int i = 0; i < n; ++i) args.push_back(random_expr(rng, depth - 1));
      return Expr::call(rng.bernoulli(0.5) ? CallFn::kMin : CallFn::kMax, std::move(args));
    }
    case 4: {
      std::vector<ExprPtr> args;
      for (int i = 0; i < 3; ++i) args.push_back(random_expr(rng, depth - 1));
      return Expr::call(CallFn::kClamp, std::move(args));
    }
    default:
      return Expr::call(CallFn::kStep, {random_expr(rng, depth - 1)});
  }
}

TEST(ProgramVerifier, EveryCompiledProgramVerifies) {
  for (std::uint64_t seed = 1; seed <= 1500; ++seed) {
    Rng rng{seed};
    const ExprPtr expr = random_expr(rng, static_cast<int>(rng.uniform_int(1, 6)));
    const ExprProgram prog = ExprProgram::compile(*expr);
    const auto r = verify_program(prog);
    ASSERT_TRUE(r.ok) << "seed " << seed << ": " << expr->to_string() << " — " << r.message
                      << " at insn " << r.insn_index;
  }
}

TEST(ProgramVerifier, EnginesInstallVerifiedPrograms) {
  // The install gates in LazyStorage and VES run verify_or_throw on every
  // compiled evolving predicate; well-formed subscriptions must sail through
  // every engine kind and still match.
  for (const EngineKind kind :
       {EngineKind::kVes, EngineKind::kLees, EngineKind::kClees, EngineKind::kHybrid}) {
    Simulator sim;
    testutil::SimHost host{sim};
    EngineConfig config;
    config.kind = kind;
    const auto engine = make_engine(config);
    engine->add(testutil::make_sub(1, "x >= -3 + t; x <= 3 + t"), NodeId{1}, host, false);
    engine->add(testutil::make_sub(2, "x <= clamp(min(4, 9), 0, step(2))"), NodeId{2}, host,
                false);
    ASSERT_EQ(engine->size(), 2u) << to_string(kind);

    Publication pub;
    pub.set("x", Value{0.5});
    pub.set_entry_time(sim.now());
    const auto dests = testutil::match(*engine, host, pub);
    EXPECT_EQ(dests.size(), 2u) << to_string(kind);
  }
}

}  // namespace
}  // namespace evps
