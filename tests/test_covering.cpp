// Unit tests for the covering analysis (analysis/covering.hpp) and the
// incremental covering forest (analysis/covering_index.hpp): ValueSet domain
// operations, hand-picked covers() verdicts, and index add/remove life cycle
// including demotion, promotion and transitivity re-attachment.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "analysis/covering.hpp"
#include "analysis/covering_index.hpp"
#include "common/sim_time.hpp"
#include "message/codec.hpp"

namespace evps {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

Subscription make_sub(std::uint64_t id, const std::string& text) {
  Subscription sub = parse_subscription(text);
  sub.set_id(SubscriptionId{id});
  return sub;
}

// --- ValueSet ---------------------------------------------------------------

TEST(ValueSet, UniverseAdmitsEverything) {
  const ValueSet u = ValueSet::universe();
  EXPECT_TRUE(u.admits_num(0.0));
  EXPECT_TRUE(u.admits_num(-kInf));
  EXPECT_TRUE(u.admits_num(kInf));
  EXPECT_TRUE(u.admits_string("abc"));
  EXPECT_TRUE(u.nan);
  EXPECT_FALSE(u.empty());
}

TEST(ValueSet, NothingAdmitsNothing) {
  const ValueSet n = ValueSet::nothing();
  EXPECT_FALSE(n.admits_num(0.0));
  EXPECT_FALSE(n.admits_string(""));
  EXPECT_TRUE(n.empty());
}

TEST(ValueSet, OpenEndpointsExcludeBoundary) {
  ValueSet s = ValueSet::universe();
  s.lo = 1.0;
  s.hi = 2.0;
  s.lo_open = true;
  s.hi_open = false;
  EXPECT_FALSE(s.admits_num(1.0));
  EXPECT_TRUE(s.admits_num(1.5));
  EXPECT_TRUE(s.admits_num(2.0));
  EXPECT_FALSE(s.admits_num(2.5));
}

TEST(ValueSet, ExclusionsCarveOutPoints) {
  ValueSet s = ValueSet::universe();
  s.excluded_nums.push_back(5.0);
  s.excluded_strs.push_back("gone");
  EXPECT_FALSE(s.admits_num(5.0));
  EXPECT_TRUE(s.admits_num(5.1));
  EXPECT_FALSE(s.admits_string("gone"));
  EXPECT_TRUE(s.admits_string("here"));
}

TEST(ValueSet, IntersectTightensBothSides) {
  ValueSet a = ValueSet::universe();
  a.lo = 0.0;
  a.hi = 10.0;
  ValueSet b = ValueSet::universe();
  b.lo = 5.0;
  b.hi = 20.0;
  b.lo_open = true;
  b.nan = false;
  a.intersect(b);
  EXPECT_EQ(a.lo, 5.0);
  EXPECT_TRUE(a.lo_open);
  EXPECT_EQ(a.hi, 10.0);
  EXPECT_FALSE(a.nan);
}

TEST(ValueSet, IntersectStringsOneWithExclusion) {
  ValueSet one = ValueSet::universe();
  one.strings = ValueSet::Strings::kOne;
  one.str = "IBM";
  ValueSet excl = ValueSet::universe();
  excl.excluded_strs.push_back("IBM");
  one.intersect(excl);
  EXPECT_FALSE(one.admits_string("IBM"));
  EXPECT_FALSE(one.admits_string("MSFT"));
}

TEST(ValueSet, SubsetOfRespectsOpenness) {
  ValueSet outer = ValueSet::universe();
  outer.lo = 0.0;
  outer.hi = 1.0;
  ValueSet inner = outer;
  EXPECT_TRUE(subset_of(outer, inner));
  // Inner open at an endpoint the outer includes: not a subset.
  inner.hi_open = true;
  EXPECT_FALSE(subset_of(outer, inner));
  // Outer open there too: subset again.
  outer.hi_open = true;
  EXPECT_TRUE(subset_of(outer, inner));
}

TEST(ValueSet, SubsetOfChecksNanAndExclusions) {
  ValueSet outer = ValueSet::universe();
  ValueSet inner = ValueSet::universe();
  inner.nan = false;
  EXPECT_FALSE(subset_of(outer, inner));  // outer admits NaN, inner does not
  outer.nan = false;
  EXPECT_TRUE(subset_of(outer, inner));
  inner.excluded_nums.push_back(3.0);
  EXPECT_FALSE(subset_of(outer, inner));  // outer still admits 3.0
  outer.excluded_nums.push_back(3.0);
  EXPECT_TRUE(subset_of(outer, inner));
}

// --- covers(), hand-picked --------------------------------------------------

struct CoversTest : ::testing::Test {
  VariableRegistry reg;

  void SetUp() override {
    reg.declare_range("cv_load", 0.0, 1.0);
    reg.set("cv_load", 0.5, SimTime::zero());
    reg.declare_range("cv_unset", 0.0, 1.0);  // declared but never set
  }

  CoverVerdict check(const std::string& a, const std::string& b) {
    return covers(make_sub(1, a), make_sub(2, b), reg);
  }
};

TEST_F(CoversTest, StaticIntervalContainment) {
  EXPECT_EQ(check("x >= 0; x <= 100", "x >= 10; x <= 20"), CoverVerdict::kCovers);
  EXPECT_EQ(check("x >= 10; x <= 20", "x >= 0; x <= 100"), CoverVerdict::kUnknown);
  EXPECT_EQ(check("x > 10", "x >= 11"), CoverVerdict::kCovers);
  EXPECT_EQ(check("x > 10", "x >= 10"), CoverVerdict::kUnknown);  // 10 matches B only
}

TEST_F(CoversTest, IdenticalSubscriptionsCoverEachOther) {
  EXPECT_EQ(check("x >= 1; x <= 2; y = 7", "x >= 1; x <= 2; y = 7"), CoverVerdict::kCovers);
}

TEST_F(CoversTest, CovererAttrsMustBeSubsetOfCoverees) {
  // A constrains y, B does not: a publication {y: 999, x: 15} matches B only.
  EXPECT_EQ(check("x >= 0; x <= 100; y <= 5", "x >= 10; x <= 20"), CoverVerdict::kUnknown);
  // The other containment direction is fine: B may constrain extra attrs.
  EXPECT_EQ(check("x >= 0; x <= 100", "x >= 10; x <= 20; y <= 5"), CoverVerdict::kCovers);
}

TEST_F(CoversTest, EvolvingCovereeUsesEnvelope) {
  // B's bound lives in [200, 300] for cv_load in [0, 1]: inside A's [0, 500].
  EXPECT_EQ(check("x >= 0; x <= 500", "x >= 50; x <= 200 + 100 * cv_load"),
            CoverVerdict::kCovers);
  // Envelope reaches 600: not provably inside.
  EXPECT_EQ(check("x >= 0; x <= 500", "x >= 50; x <= 200 + 400 * cv_load"),
            CoverVerdict::kUnknown);
}

TEST_F(CoversTest, EvolvingCovererUsesGuaranteedSide) {
  // A admits x up to the envelope minimum of its bound (200 at load = 0);
  // outward 1-ulp rounding makes the exact endpoint unprovable, but any
  // strictly smaller range is guaranteed.
  EXPECT_EQ(check("x <= 200 + 100 * cv_load", "x >= 0; x <= 199"), CoverVerdict::kCovers);
  // 250 is only admitted for load >= 0.5: not guaranteed.
  EXPECT_EQ(check("x <= 200 + 100 * cv_load", "x >= 0; x <= 250"), CoverVerdict::kUnknown);
}

TEST_F(CoversTest, TimeDependentCovererFailsClosed) {
  // x <= 5 + t admits [<= 5] at t = 0 and more later; only the t = 0 floor
  // (minus outward rounding) is guaranteed at every instant.
  EXPECT_EQ(check("x <= 5 + t", "x >= 0; x <= 4"), CoverVerdict::kCovers);
  EXPECT_EQ(check("x <= 5 + t", "x >= 0; x <= 6"), CoverVerdict::kUnknown);
}

TEST_F(CoversTest, UnsetVariableCovererNeverCovers) {
  // cv_unset has no value: A's bound is unresolvable today (the predicate
  // fails closed at match time), so A must not claim to cover anything.
  EXPECT_EQ(check("x <= 500 + cv_unset", "x >= 0; x <= 100"), CoverVerdict::kUnknown);
  // As a coveree the unset variable only widens the outer envelope — its
  // declared range [0, 1] still bounds it, so covering stays provable.
  EXPECT_EQ(check("x >= -10000; x <= 10000", "x >= 0; x <= 100 + cv_unset"),
            CoverVerdict::kCovers);
}

TEST_F(CoversTest, StringEqualityAndExclusion) {
  EXPECT_EQ(check("sym != 'MSFT'", "sym = 'IBM'"), CoverVerdict::kCovers);
  EXPECT_EQ(check("sym != 'IBM'", "sym = 'IBM'"), CoverVerdict::kUnknown);
  EXPECT_EQ(check("sym = 'IBM'", "sym = 'IBM'; price >= 10"), CoverVerdict::kCovers);
  EXPECT_EQ(check("sym = 'IBM'", "sym != 'MSFT'"), CoverVerdict::kUnknown);
}

TEST_F(CoversTest, NotEqualsNumericExclusion) {
  EXPECT_EQ(check("x != 5", "x >= 10; x <= 20"), CoverVerdict::kCovers);
  EXPECT_EQ(check("x != 15", "x >= 10; x <= 20"), CoverVerdict::kUnknown);
}

TEST_F(CoversTest, NanConstantNeverCoversNumericRange) {
  const double nan = kNan;
  Subscription a;
  a.set_id(SubscriptionId{1});
  a.add(Predicate{"x", RelOp::kLe, Value{nan}});  // matches nothing
  EXPECT_EQ(covers(a, make_sub(2, "x >= 0; x <= 1"), reg), CoverVerdict::kUnknown);
}

// --- CoveringIndex ----------------------------------------------------------

struct CoveringIndexTest : ::testing::Test {
  VariableRegistry reg;
  CoveringIndex index;

  void SetUp() override {
    reg.declare_range("ci_load", 0.0, 1.0);
    reg.set("ci_load", 0.5, SimTime::zero());
  }

  CoveringIndex::AddResult add(std::uint64_t id, const std::string& text) {
    return index.add(make_sub(id, text), reg);
  }
};

TEST_F(CoveringIndexTest, FirstSubscriptionBecomesRoot) {
  const auto r = add(1, "x >= 0; x <= 100");
  EXPECT_FALSE(r.parent.valid());
  EXPECT_TRUE(r.demoted.empty());
  EXPECT_TRUE(index.is_root(SubscriptionId{1}));
  EXPECT_EQ(index.root_count(), 1u);
}

TEST_F(CoveringIndexTest, DuplicateAddThrowsWithoutMutatingTheForest) {
  add(1, "x >= 0; x <= 100");
  add(2, "x >= 10; x <= 20");
  EXPECT_THROW(add(1, "x >= 5; x <= 50"), std::invalid_argument);
  EXPECT_THROW(add(2, "x >= 10; x <= 20"), std::invalid_argument);
  EXPECT_EQ(index.size(), 2u);
  EXPECT_EQ(index.root_count(), 1u);
  EXPECT_EQ(index.root_of(SubscriptionId{2}), SubscriptionId{1});
  EXPECT_EQ(index.children_of(SubscriptionId{1}).size(), 1u);
}

TEST_F(CoveringIndexTest, CoveredSubscriptionAttachesAsChild) {
  add(1, "x >= 0; x <= 100");
  const auto r = add(2, "x >= 10; x <= 20");
  EXPECT_EQ(r.parent, SubscriptionId{1});
  EXPECT_FALSE(index.is_root(SubscriptionId{2}));
  EXPECT_EQ(index.root_of(SubscriptionId{2}), SubscriptionId{1});
  EXPECT_EQ(index.root_count(), 1u);
  EXPECT_EQ(index.size(), 2u);
}

TEST_F(CoveringIndexTest, WiderSubscriptionDemotesExistingRoots) {
  add(1, "x >= 10; x <= 20");
  add(2, "x >= 40; x <= 50");
  const auto r = add(3, "x >= 0; x <= 100");
  EXPECT_FALSE(r.parent.valid());
  ASSERT_EQ(r.demoted.size(), 2u);
  EXPECT_TRUE(index.is_root(SubscriptionId{3}));
  EXPECT_EQ(index.root_of(SubscriptionId{1}), SubscriptionId{3});
  EXPECT_EQ(index.root_of(SubscriptionId{2}), SubscriptionId{3});
  EXPECT_EQ(index.root_count(), 1u);
}

TEST_F(CoveringIndexTest, TransitivityReattachesGrandchildren) {
  add(1, "x >= 10; x <= 20");        // root
  add(2, "x >= 12; x <= 15");        // child of 1
  const auto r = add(3, "x >= 0; x <= 100");  // demotes 1; 2 re-attaches to 3
  ASSERT_EQ(r.demoted.size(), 1u);
  EXPECT_EQ(r.demoted[0], SubscriptionId{1});
  EXPECT_EQ(index.root_of(SubscriptionId{2}), SubscriptionId{3});
  EXPECT_EQ(index.children_of(SubscriptionId{3}).size(), 2u);
  EXPECT_TRUE(index.children_of(SubscriptionId{1}).empty());
}

TEST_F(CoveringIndexTest, RemoveChildIsSilent) {
  add(1, "x >= 0; x <= 100");
  add(2, "x >= 10; x <= 20");
  const auto r = index.remove(SubscriptionId{2});
  EXPECT_TRUE(r.promoted.empty());
  EXPECT_FALSE(index.contains(SubscriptionId{2}));
  EXPECT_TRUE(index.children_of(SubscriptionId{1}).empty());
}

TEST_F(CoveringIndexTest, RemoveRootPromotesUncoveredChildren) {
  add(1, "x >= 0; x <= 100");
  add(2, "x >= 10; x <= 20");
  add(3, "x >= 30; x <= 40");
  const auto r = index.remove(SubscriptionId{1});
  ASSERT_EQ(r.promoted.size(), 2u);
  EXPECT_TRUE(index.is_root(SubscriptionId{2}));
  EXPECT_TRUE(index.is_root(SubscriptionId{3}));
  EXPECT_EQ(index.root_count(), 2u);
}

TEST_F(CoveringIndexTest, RemoveRootReattachesToSurvivingCoverer) {
  add(1, "x >= 0; x <= 100");
  add(2, "x >= 0; x <= 50");   // child of 1
  add(3, "x >= 10; x <= 20");  // child of 1
  const auto r = index.remove(SubscriptionId{1});
  // 2 gets promoted (nothing covers it); 3 is offered to the freshly
  // promoted 2 and re-attaches silently — only one re-dissemination.
  ASSERT_EQ(r.promoted.size(), 1u);
  EXPECT_EQ(r.promoted[0], SubscriptionId{2});
  EXPECT_EQ(index.root_of(SubscriptionId{3}), SubscriptionId{2});
  EXPECT_EQ(index.root_count(), 1u);
}

TEST_F(CoveringIndexTest, EvolvingChildUnderStaticRoot) {
  add(1, "x >= 0; x <= 500");
  const auto r = add(2, "[tt=0.5] x >= 50; x <= 200 + 100 * ci_load");
  EXPECT_EQ(r.parent, SubscriptionId{1});
}

TEST_F(CoveringIndexTest, DisjointAttributesStayIndependentRoots) {
  add(1, "x >= 0; x <= 100");
  add(2, "y >= 0; y <= 100");
  EXPECT_EQ(index.root_count(), 2u);
  EXPECT_TRUE(index.is_root(SubscriptionId{1}));
  EXPECT_TRUE(index.is_root(SubscriptionId{2}));
}

TEST_F(CoveringIndexTest, StatsCountPairAnalyses) {
  add(1, "x >= 0; x <= 100");
  add(2, "x >= 10; x <= 20");
  EXPECT_GE(index.stats().pairs, 1u);
  EXPECT_GE(index.stats().covered, 1u);
}

}  // namespace
}  // namespace evps
