#include "analysis/verifier.hpp"

#include <cstdint>

namespace evps {
namespace {

using Op = ExprProgram::Op;

VerifyResult fail(std::size_t index, std::string message) {
  VerifyResult r;
  r.ok = false;
  r.message = std::move(message);
  r.insn_index = index;
  return r;
}

std::string at(std::size_t index) { return " (insn " + std::to_string(index) + ")"; }

}  // namespace

VerifyResult verify_program(const ExprProgram& prog) noexcept {
  const auto& code = prog.code();
  if (code.empty()) return fail(0, "empty program");

  std::size_t depth = 0;
  std::size_t peak = 0;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const ExprProgram::Insn& insn = code[i];
    // The enum is contiguous; anything past the last opcode is a raw byte
    // smuggled in through assemble() or a corrupted buffer.
    if (static_cast<std::uint8_t>(insn.op) > static_cast<std::uint8_t>(Op::kStep)) {
      return fail(i, "invalid opcode " + std::to_string(static_cast<unsigned>(insn.op)) + at(i));
    }
    std::size_t pops = 0;
    switch (insn.op) {
      case Op::kPushConst:
        break;
      case Op::kLoadVar:
        if (insn.var == kInvalidVarId || insn.var >= VariableTable::instance().size()) {
          return fail(i, "load of unregistered VarId " + std::to_string(insn.var) + at(i));
        }
        break;
      case Op::kNeg:
      case Op::kAbs:
      case Op::kFloor:
      case Op::kCeil:
      case Op::kSqrt:
      case Op::kSin:
      case Op::kCos:
      case Op::kSign:
        pops = 1;
        break;
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv:
      case Op::kMod:
      case Op::kPow:
        pops = 2;
        break;
      case Op::kMin:
      case Op::kMax:
        if (insn.argc == 0) return fail(i, "min/max with argc == 0" + at(i));
        pops = insn.argc;
        break;
      case Op::kClamp:
        if (insn.argc != 3) {
          return fail(i, "clamp with argc " + std::to_string(insn.argc) + ", expected 3" + at(i));
        }
        pops = 3;
        break;
      case Op::kStep:
        if (insn.argc != 1) {
          return fail(i, "step with argc " + std::to_string(insn.argc) + ", expected 1" + at(i));
        }
        pops = 1;
        break;
    }
    if (pops > depth) {
      return fail(i, "stack underflow: need " + std::to_string(pops) + " operands, have " +
                         std::to_string(depth) + at(i));
    }
    depth -= pops;
    ++depth;  // every instruction pushes exactly one result
    if (depth > peak) peak = depth;
  }

  if (depth != 1) {
    return fail(code.size(),
                "program leaves " + std::to_string(depth) + " values on the stack, expected 1");
  }
  if (prog.max_stack() < peak) {
    return fail(code.size(), "declared max_stack " + std::to_string(prog.max_stack()) +
                                 " understates actual peak depth " + std::to_string(peak));
  }
  return VerifyResult{};
}

void verify_or_throw(const ExprProgram& prog) {
  const VerifyResult result = verify_program(prog);
  if (!result.ok) throw VerifyError(result);
}

}  // namespace evps
