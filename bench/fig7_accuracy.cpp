// Figure 7: false positives + false negatives in the HFT use case.
//
// Ground truth = centralised instantaneous run of the same deterministic
// workload (Section VI-A2). Expected ordering (Section VI-B): LEES almost
// perfect; VES and CLEES slightly worse (MEI/TT interval granularity);
// parametric subscriptions worse (update propagation latency); the
// resubscription baseline worst (slow unsubscribe/subscribe rounds).
#include <iostream>

#include "metrics/latency.hpp"
#include "metrics/report.hpp"
#include "workloads/hft.hpp"

namespace {

using namespace evps;

HftConfig make_config(SystemKind system) {
  HftConfig cfg;
  cfg.system = system;
  cfg.seed = 42;
  cfg.pub_rate = 40.0;  // scaled from the paper's 1000/s (see EXPERIMENTS.md)
  // 100 stocks keep the per-stock quote rate high enough (~3.6/s) that the
  // CLEES cache actually engages within its TT, exposing its interval
  // granularity like the paper's full-rate feed does.
  cfg.stocks = 100;
  cfg.change_rate_per_min = 30.0;
  cfg.validity = Duration::seconds(30.0);
  cfg.duration = SimTime::from_seconds(90.0);
  cfg.traffic_interval = Duration::seconds(30.0);
  return cfg;
}

}  // namespace

int main() {
  std::cout << "Reproduction of Figure 7: HFT delivery accuracy (FP+FN)\n";
  std::cout << "ground truth: centralised instantaneous engine, same workload\n";

  HftExperiment truth_exp(make_config(SystemKind::kGroundTruth));
  truth_exp.run();
  const DeliveryLog truth = truth_exp.delivery_log();
  std::cout << "ground-truth deliveries: " << truth.total() << "\n";

  Table t{{"system", "deliveries", "false pos", "false neg", "FP+FN", "error rate",
           "accuracy", "mean latency (ms)"}};
  for (const SystemKind system : {SystemKind::kResub, SystemKind::kParametric, SystemKind::kVes,
                                  SystemKind::kLees, SystemKind::kClees}) {
    HftExperiment exp(make_config(system));
    exp.run();
    const AccuracyResult r = compare_logs(truth, exp.delivery_log());
    const Summary latency = collect_delivery_latency(exp.overlay());
    t.add_row({to_string(system), std::to_string(r.actual_deliveries),
               std::to_string(r.false_positives), std::to_string(r.false_negatives),
               std::to_string(r.errors()), Table::fmt(r.error_rate() * 100, 2) + "%",
               Table::pct(r.accuracy()), Table::fmt(latency.mean() * 1000, 2)});
  }
  t.print();
  std::cout << "\npaper: LEES near-perfect; VES/CLEES similar but coarser (MEI/TT);\n"
               "       parametric worse (update latency); resub worst (>=10% behind\n"
               "       the evolving engines).\n";
  return 0;
}
