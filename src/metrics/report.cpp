#include "metrics/report.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <utility>

namespace evps {

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) widths[i] = std::max(widths[i], row[i].size());
  }
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << (i == 0 ? "| " : " | ") << std::left << std::setw(static_cast<int>(widths[i]))
         << cells[i];
    }
    os << " |\n";
  };
  print_row(headers_);
  os << "|";
  for (const auto w : widths) os << std::string(w + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::pct(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

void print_banner(std::string_view title, std::ostream& os) {
  os << "\n=== " << title << " ===\n";
}

namespace {

/// Split a sectioned results file (`{"key": value, ...}`) into its top-level
/// key/value pairs with a brace-depth scan (string-literal aware, so braces
/// and quotes inside values don't confuse it). Returns false when the text is
/// not in that shape — the caller then starts a fresh file.
bool split_sections(const std::string& text, std::vector<std::pair<std::string, std::string>>& out) {
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < text.size() && (std::isspace(static_cast<unsigned char>(text[i])) != 0)) ++i;
  };
  skip_ws();
  if (i >= text.size() || text[i] != '{') return false;
  ++i;
  skip_ws();
  if (i < text.size() && text[i] == '}') return true;  // empty object
  while (true) {
    skip_ws();
    if (i >= text.size() || text[i] != '"') return false;
    const std::size_t key_start = ++i;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\') ++i;  // escaped char inside the key
      ++i;
    }
    if (i >= text.size()) return false;
    std::string key = text.substr(key_start, i - key_start);
    ++i;
    skip_ws();
    if (i >= text.size() || text[i] != ':') return false;
    ++i;
    skip_ws();
    // Capture the value verbatim: scan to the comma/brace that closes it at
    // depth zero, tracking nesting and string literals.
    const std::size_t value_start = i;
    int depth = 0;
    bool in_string = false;
    for (; i < text.size(); ++i) {
      const char c = text[i];
      if (in_string) {
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          in_string = false;
        }
        continue;
      }
      if (c == '"') {
        in_string = true;
      } else if (c == '{' || c == '[') {
        ++depth;
      } else if (c == '}' || c == ']') {
        if (depth == 0) break;  // the object's closing brace
        --depth;
      } else if (c == ',' && depth == 0) {
        break;
      }
    }
    if (i >= text.size()) return false;
    std::string value = text.substr(value_start, i - value_start);
    while (!value.empty() && (std::isspace(static_cast<unsigned char>(value.back())) != 0)) {
      value.pop_back();
    }
    out.emplace_back(std::move(key), std::move(value));
    if (text[i] == '}') return true;
    ++i;  // consume the comma
  }
}

}  // namespace

bool write_json_section(const std::string& path, const std::string& key, const std::string& body) {
  std::vector<std::pair<std::string, std::string>> sections;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      std::vector<std::pair<std::string, std::string>> parsed;
      // A pre-sectioned file (its first key is a bench payload field like
      // "bench" rather than a section name) is replaced wholesale.
      if (split_sections(buf.str(), parsed) &&
          (parsed.empty() || parsed.front().first != "bench")) {
        sections = std::move(parsed);
      }
    }
  }
  bool replaced = false;
  for (auto& [name, value] : sections) {
    if (name == key) {
      value = body;
      replaced = true;
      break;
    }
  }
  if (!replaced) sections.emplace_back(key, body);

  std::ofstream out(path);
  if (!out) return false;
  out << "{\n";
  for (std::size_t s = 0; s < sections.size(); ++s) {
    out << "\"" << sections[s].first << "\": " << sections[s].second;
    out << (s + 1 < sections.size() ? ",\n" : "\n");
  }
  out << "}\n";
  return static_cast<bool>(out);
}

}  // namespace evps
