#include "metrics/accuracy.hpp"

#include <algorithm>

namespace evps {

DeliveryLog collect_delivery_log(const Overlay& overlay) {
  DeliveryLog log;
  for (const auto& client : overlay.clients()) {
    if (client->deliveries().empty()) continue;
    auto& set = log.delivered[client->id()];
    for (const auto& d : client->deliveries()) set.insert(d.pub.id());
  }
  return log;
}

AccuracyResult compare_logs(const DeliveryLog& truth, const DeliveryLog& actual) {
  AccuracyResult result;
  result.truth_deliveries = truth.total();
  result.actual_deliveries = actual.total();

  // False negatives: in truth, not delivered.
  for (const auto& [client, truth_pubs] : truth.delivered) {
    const auto it = actual.delivered.find(client);
    if (it == actual.delivered.end()) {
      result.false_negatives += truth_pubs.size();
      continue;
    }
    for (const auto pub : truth_pubs) {
      if (!it->second.contains(pub)) ++result.false_negatives;
    }
  }
  // False positives: delivered, not in truth.
  for (const auto& [client, actual_pubs] : actual.delivered) {
    const auto it = truth.delivered.find(client);
    if (it == truth.delivered.end()) {
      result.false_positives += actual_pubs.size();
      continue;
    }
    for (const auto pub : actual_pubs) {
      if (!it->second.contains(pub)) ++result.false_positives;
    }
  }
  return result;
}

}  // namespace evps
