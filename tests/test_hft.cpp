// High-frequency trading workload: end-to-end integration checks of the
// Section VI-B experiment harness (scaled down for test speed).
#include <gtest/gtest.h>

#include "workloads/hft.hpp"

namespace evps {
namespace {

HftConfig small_config(SystemKind system) {
  HftConfig cfg;
  cfg.system = system;
  cfg.seed = 42;
  cfg.clients = 9;
  cfg.stocks = 60;
  cfg.stocks_per_client = 3;
  cfg.pub_rate = 20.0;
  cfg.change_rate_per_min = 30.0;
  cfg.validity = Duration::seconds(10.0);
  cfg.duration = SimTime::from_seconds(30.0);
  cfg.traffic_interval = Duration::seconds(10.0);
  return cfg;
}

TEST(Hft, TopologyHasThirteenBrokers) {
  HftExperiment exp(small_config(SystemKind::kLees));
  exp.run();
  EXPECT_EQ(exp.overlay().brokers().size(), 13u);  // 1 central + 3x(1 core + 3 edges)
  EXPECT_EQ(exp.overlay().clients().size(), 9u + 9u);
}

TEST(Hft, GroundTruthIsCentralized) {
  HftExperiment exp(small_config(SystemKind::kGroundTruth));
  exp.run();
  EXPECT_EQ(exp.overlay().brokers().size(), 1u);
}

TEST(Hft, DeliveriesHappen) {
  HftExperiment exp(small_config(SystemKind::kLees));
  exp.run();
  EXPECT_GT(exp.delivery_log().total(), 0u);
}

TEST(Hft, DeterministicAcrossRuns) {
  HftExperiment a(small_config(SystemKind::kVes));
  HftExperiment b(small_config(SystemKind::kVes));
  a.run();
  b.run();
  const auto log_a = a.delivery_log();
  const auto log_b = b.delivery_log();
  EXPECT_EQ(log_a.total(), log_b.total());
  EXPECT_EQ(log_a.delivered, log_b.delivered);
  EXPECT_EQ(a.traffic().mean(), b.traffic().mean());
}

TEST(Hft, ModelPriceIsDeterministicAndSeedDependent) {
  const auto cfg = small_config(SystemKind::kLees);
  HftExperiment a(cfg);
  HftExperiment b(cfg);
  auto cfg2 = cfg;
  cfg2.seed = 43;
  HftExperiment c(cfg2);
  const SimTime t = SimTime::from_seconds(17);
  EXPECT_EQ(a.model_price(5, t), b.model_price(5, t));
  EXPECT_NE(a.model_price(5, t), c.model_price(5, t));
}

TEST(Hft, TrafficOrderingAcrossSystems) {
  double traffic[3] = {0, 0, 0};
  const SystemKind systems[] = {SystemKind::kResub, SystemKind::kParametric, SystemKind::kLees};
  for (int i = 0; i < 3; ++i) {
    HftExperiment exp(small_config(systems[i]));
    exp.run();
    traffic[i] = exp.traffic().mean();
  }
  // The paper's headline: evolving << parametric < resubscription.
  EXPECT_GT(traffic[0], traffic[1]);
  EXPECT_GT(traffic[1], traffic[2] * 2);
  // Parametric halves resubscription traffic (one update vs unsub+sub),
  // modulo the constant initial-subscription component.
  EXPECT_NEAR(traffic[1] / traffic[0], 0.5, 0.1);
}

TEST(Hft, EvolvingVariantsHaveSameTraffic) {
  double traffic[3] = {0, 0, 0};
  const SystemKind systems[] = {SystemKind::kVes, SystemKind::kLees, SystemKind::kClees};
  for (int i = 0; i < 3; ++i) {
    HftExperiment exp(small_config(systems[i]));
    exp.run();
    traffic[i] = exp.traffic().mean();
  }
  // "All three evolving solutions have almost the same performance with
  // respect to this metric" (Section VI-B).
  EXPECT_DOUBLE_EQ(traffic[0], traffic[1]);
  EXPECT_DOUBLE_EQ(traffic[1], traffic[2]);
}

TEST(Hft, EvolvingTrafficUnaffectedByChangeRate) {
  auto cfg_fast = small_config(SystemKind::kLees);
  cfg_fast.change_rate_per_min = 60.0;
  auto cfg_slow = small_config(SystemKind::kLees);
  cfg_slow.change_rate_per_min = 6.0;
  HftExperiment fast(cfg_fast);
  HftExperiment slow(cfg_slow);
  fast.run();
  slow.run();
  EXPECT_DOUBLE_EQ(fast.traffic().mean(), slow.traffic().mean());
}

TEST(Hft, ResubTrafficScalesWithChangeRate) {
  auto cfg_fast = small_config(SystemKind::kResub);
  cfg_fast.change_rate_per_min = 60.0;
  auto cfg_slow = small_config(SystemKind::kResub);
  cfg_slow.change_rate_per_min = 12.0;
  HftExperiment fast(cfg_fast);
  HftExperiment slow(cfg_slow);
  fast.run();
  slow.run();
  EXPECT_GT(fast.traffic().mean(), slow.traffic().mean() * 3);
}

TEST(Hft, EvolvingTrafficScalesWithReplacementRate) {
  auto cfg_short = small_config(SystemKind::kLees);
  cfg_short.validity = Duration::seconds(5.0);  // 2x replacement rate of 10s
  HftExperiment frequent(cfg_short);
  HftExperiment normal(small_config(SystemKind::kLees));
  frequent.run();
  normal.run();
  EXPECT_GT(frequent.traffic().mean(), normal.traffic().mean() * 1.5);
}

TEST(Hft, SnapshotConsistencyImprovesLeesAccuracy) {
  // Section V-D extension exercised end-to-end: piggybacked variable
  // snapshots anchor evaluation at the publication entry instant, so LEES
  // accuracy must be at least as good as without snapshots.
  HftExperiment truth_exp(small_config(SystemKind::kGroundTruth));
  truth_exp.run();
  const auto truth = truth_exp.delivery_log();

  auto plain_cfg = small_config(SystemKind::kLees);
  auto snap_cfg = small_config(SystemKind::kLees);
  snap_cfg.snapshot_consistency = true;
  HftExperiment plain(plain_cfg);
  HftExperiment snap(snap_cfg);
  plain.run();
  snap.run();
  const auto plain_acc = compare_logs(truth, plain.delivery_log());
  const auto snap_acc = compare_logs(truth, snap.delivery_log());
  EXPECT_LE(snap_acc.errors(), plain_acc.errors());
  EXPECT_GT(snap.delivery_log().total(), 0u);
}

TEST(Hft, AccuracyOrderingMatchesPaper) {
  // Ground truth first.
  HftExperiment truth_exp(small_config(SystemKind::kGroundTruth));
  truth_exp.run();
  const auto truth = truth_exp.delivery_log();
  ASSERT_GT(truth.total(), 0u);

  std::map<SystemKind, AccuracyResult> results;
  for (const SystemKind system : {SystemKind::kResub, SystemKind::kParametric, SystemKind::kVes,
                                  SystemKind::kLees, SystemKind::kClees}) {
    HftExperiment exp(small_config(system));
    exp.run();
    results[system] = compare_logs(truth, exp.delivery_log());
  }
  // LEES is the most accurate evolving engine (near-perfect).
  EXPECT_LT(results[SystemKind::kLees].error_rate(), 0.02);
  // Every evolving engine beats the resubscription baseline.
  for (const SystemKind system : {SystemKind::kVes, SystemKind::kLees, SystemKind::kClees}) {
    EXPECT_LE(results[system].error_rate(), results[SystemKind::kResub].error_rate())
        << to_string(system);
  }
}

}  // namespace
}  // namespace evps
