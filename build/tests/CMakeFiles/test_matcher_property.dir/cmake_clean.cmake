file(REMOVE_RECURSE
  "CMakeFiles/test_matcher_property.dir/test_matcher_property.cpp.o"
  "CMakeFiles/test_matcher_property.dir/test_matcher_property.cpp.o.d"
  "test_matcher_property"
  "test_matcher_property.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matcher_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
