#include "common/string_util.hpp"

#include <cctype>

namespace evps {

std::vector<std::string_view> split_quoted(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  bool in_quote = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\'') in_quote = !in_quote;
    if (c == sep && !in_quote) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  out.push_back(text.substr(start));
  return out;
}

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == sep) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  out.push_back(text.substr(start));
  return out;
}

std::string_view trim(std::string_view text) noexcept {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front())) != 0) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back())) != 0) {
    text.remove_suffix(1);
  }
  return text;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += sep;
    out += items[i];
  }
  return out;
}

}  // namespace evps
