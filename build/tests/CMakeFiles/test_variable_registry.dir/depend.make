# Empty dependencies file for test_variable_registry.
# This may be replaced when dependencies are built.
