// Subscription-sharded parallel matcher.
//
// Partitions subscriptions across K underlying matcher shards by a hash of
// the subscription id and fans match() out to the shared worker pool, one
// task per shard. Each shard is a complete single-threaded matcher with its
// own epoch scratch, so the workers never share mutable state; the only
// cross-thread traffic is the pool's index handshake and the per-shard hit
// vectors, which are merged on the caller after the join.
//
// Determinism: every shard returns its hits in ascending id order (the
// Matcher contract) into its own scratch vector, and the merge sorts the
// concatenation — the result is the ascending-id hit list over all shards,
// byte-identical to what a single unsharded matcher returns, for every K and
// every pool schedule. K=1 bypasses the pool and the merge entirely and is
// the exact single-matcher code path.
//
// match_batch() amortises one pool dispatch (and, inside each shard, one
// epoch sweep per publication without re-crossing the pool) over a whole
// vector of publications: task (shard s) matches *all* publications against
// shard s, so a batch of B publications costs one fork/join instead of B.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "matching/matcher.hpp"

namespace evps {

/// Default shard count: the EVPS_MATCHER_THREADS environment variable,
/// clamped to [1, 64]; unset, empty, or unparsable values mean 1 (the
/// single-threaded layout). Read once and cached for the process lifetime.
[[nodiscard]] std::size_t default_matcher_shards();

class ShardedMatcher final : public Matcher {
 public:
  /// `shards` == 0 resolves to default_matcher_shards().
  explicit ShardedMatcher(MatcherKind kind, std::size_t shards = 0);

  /// Which shard owns `id`. Pure function of (id, shard_count): a
  /// splittable 64-bit mix so that consecutive ids spread evenly.
  [[nodiscard]] static std::size_t shard_of(SubscriptionId id, std::size_t shards) noexcept;

  void add(SubscriptionId id, const std::vector<Predicate>& preds) override;
  void add_batch(std::vector<MatcherBatchEntry> batch) override;
  bool remove(SubscriptionId id) override;
  void match(const Publication& pub, std::vector<SubscriptionId>& out) const override;
  void match_batch(std::span<const Publication* const> pubs,
                   std::vector<std::vector<SubscriptionId>>& out) const override;
  using Matcher::match_batch;  // keep the contiguous-span convenience visible
  [[nodiscard]] bool contains(SubscriptionId id) const override;
  [[nodiscard]] std::size_t size() const override;
  void collect_ids(std::vector<SubscriptionId>& out) const override {
    for (const MatcherPtr& s : shards_) s->collect_ids(out);
  }

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
  [[nodiscard]] std::size_t shard_of(SubscriptionId id) const noexcept {
    return shard_of(id, shards_.size());
  }
  /// Direct access to one shard (engines route per-shard work through this).
  [[nodiscard]] Matcher& shard(std::size_t s) { return *shards_[s]; }
  [[nodiscard]] const Matcher& shard(std::size_t s) const { return *shards_[s]; }
  /// Subscriptions currently installed in each shard (occupancy metric).
  [[nodiscard]] std::vector<std::size_t> shard_sizes() const;

 private:
  struct ShardScratch {
    // One hit vector per publication of the current batch; hits[0] doubles
    // as the single-publication scratch.
    std::vector<std::vector<SubscriptionId>> hits;
  };

  std::vector<MatcherPtr> shards_;
  // Mutable: match() is const but reuses per-shard scratch, exactly like the
  // underlying matchers' epoch scratch. Guarded by the engines' single-writer
  // discipline (concurrent match() calls on one ShardedMatcher are not
  // allowed; concurrent calls on different instances are).
  mutable std::vector<ShardScratch> scratch_;
};

}  // namespace evps
