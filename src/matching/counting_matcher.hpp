// Counting-algorithm matcher with per-attribute operator indexes.
//
// The classic content-based matching scheme (Fabret et al. / PADRES): each
// predicate is indexed under its attribute; matching a publication walks, for
// each publication attribute, the set of satisfied predicates and counts hits
// per subscription. A subscription matches when its hit count equals its
// predicate count.
//
// Index structure per attribute:
//   * four sorted bound lists for < <= > >= (binary search + contiguous walk)
//   * hash maps for numeric and string equality
//   * scan lists for != and for ordered string comparisons
//
// Insertion/removal into the sorted lists is O(n) per attribute — this is
// the "optimized indexing structure" whose maintenance cost the paper's VES
// analysis depends on (Figures 8 and 9): fast matching, but version
// replacement cost grows with the matcher population.
#pragma once

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "matching/matcher.hpp"

namespace evps {

class CountingMatcher final : public Matcher {
 public:
  using Matcher::match;

  void add(SubscriptionId id, const std::vector<Predicate>& preds) override;
  bool remove(SubscriptionId id) override;
  void match(const Publication& pub, std::vector<SubscriptionId>& out) const override;
  [[nodiscard]] bool contains(SubscriptionId id) const override { return subs_.contains(id); }
  [[nodiscard]] std::size_t size() const override { return subs_.size(); }

  /// Total number of indexed predicates (diagnostics).
  [[nodiscard]] std::size_t predicate_count() const noexcept { return predicate_count_; }

 private:
  struct BoundEntry {
    double bound;
    SubscriptionId sub;

    friend bool operator<(const BoundEntry& a, const BoundEntry& b) noexcept {
      if (a.bound != b.bound) return a.bound < b.bound;
      return a.sub < b.sub;
    }
  };

  struct AttributeIndex {
    // pub_value OP bound; sorted ascending by bound.
    std::vector<BoundEntry> lt, le, gt, ge;
    std::unordered_map<double, std::vector<SubscriptionId>> eq_num;
    std::unordered_map<std::string, std::vector<SubscriptionId>> eq_str;
    std::vector<std::pair<Value, SubscriptionId>> ne;
    // Ordered string comparisons (rare): evaluated by scan.
    std::vector<std::pair<Predicate, SubscriptionId>> misc;

    [[nodiscard]] bool empty() const noexcept {
      return lt.empty() && le.empty() && gt.empty() && ge.empty() && eq_num.empty() &&
             eq_str.empty() && ne.empty() && misc.empty();
    }
  };

  void index_predicate(SubscriptionId id, const Predicate& p);
  void unindex_predicate(SubscriptionId id, const Predicate& p);

  std::map<std::string, AttributeIndex, std::less<>> index_;
  std::unordered_map<SubscriptionId, std::vector<Predicate>> subs_;
  std::size_t predicate_count_ = 0;
};

}  // namespace evps
