#include <gtest/gtest.h>

#include "expr/parser.hpp"
#include "matching/brute_force_matcher.hpp"
#include "matching/churn_matcher.hpp"
#include "matching/counting_matcher.hpp"
#include "message/codec.hpp"

namespace evps {
namespace {

class MatcherKinds : public ::testing::TestWithParam<MatcherKind> {
 protected:
  MatcherPtr matcher_ = make_matcher(GetParam());
};

std::vector<Predicate> preds(std::initializer_list<const char*> texts) {
  std::vector<Predicate> out;
  for (const auto* t : texts) out.push_back(parse_predicate(t));
  return out;
}

TEST_P(MatcherKinds, EmptyMatcherMatchesNothing) {
  EXPECT_TRUE(matcher_->match(parse_publication("x = 1")).empty());
  EXPECT_EQ(matcher_->size(), 0u);
}

TEST_P(MatcherKinds, SingleRangeSubscription) {
  matcher_->add(SubscriptionId{1}, preds({"x >= -3", "x <= 3", "y >= -2", "y <= 2"}));
  EXPECT_EQ(matcher_->match(parse_publication("x = 0; y = 0")),
            std::vector<SubscriptionId>{SubscriptionId{1}});
  EXPECT_TRUE(matcher_->match(parse_publication("x = 4; y = 3")).empty());
  EXPECT_TRUE(matcher_->match(parse_publication("x = 0")).empty());  // missing y
}

TEST_P(MatcherKinds, BoundaryInclusivity) {
  matcher_->add(SubscriptionId{1}, preds({"x < 3"}));
  matcher_->add(SubscriptionId{2}, preds({"x <= 3"}));
  matcher_->add(SubscriptionId{3}, preds({"x > 3"}));
  matcher_->add(SubscriptionId{4}, preds({"x >= 3"}));
  const auto at3 = matcher_->match(parse_publication("x = 3"));
  EXPECT_EQ(at3, (std::vector<SubscriptionId>{SubscriptionId{2}, SubscriptionId{4}}));
  const auto at2 = matcher_->match(parse_publication("x = 2"));
  EXPECT_EQ(at2, (std::vector<SubscriptionId>{SubscriptionId{1}, SubscriptionId{2}}));
  const auto at4 = matcher_->match(parse_publication("x = 4"));
  EXPECT_EQ(at4, (std::vector<SubscriptionId>{SubscriptionId{3}, SubscriptionId{4}}));
}

TEST_P(MatcherKinds, EqualityAndInequality) {
  matcher_->add(SubscriptionId{1}, preds({"symbol = 'IBM'"}));
  matcher_->add(SubscriptionId{2}, preds({"symbol != 'IBM'"}));
  matcher_->add(SubscriptionId{3}, preds({"price = 15"}));
  EXPECT_EQ(matcher_->match(parse_publication("symbol = 'IBM'")),
            std::vector<SubscriptionId>{SubscriptionId{1}});
  EXPECT_EQ(matcher_->match(parse_publication("symbol = 'MSFT'")),
            std::vector<SubscriptionId>{SubscriptionId{2}});
  // Int/double cross-type equality.
  EXPECT_EQ(matcher_->match(parse_publication("price = 15.0")),
            std::vector<SubscriptionId>{SubscriptionId{3}});
}

TEST_P(MatcherKinds, StringOrderingPredicates) {
  matcher_->add(SubscriptionId{1}, preds({"name < 'm'"}));
  EXPECT_EQ(matcher_->match(parse_publication("name = 'alice'")),
            std::vector<SubscriptionId>{SubscriptionId{1}});
  EXPECT_TRUE(matcher_->match(parse_publication("name = 'zoe'")).empty());
  EXPECT_TRUE(matcher_->match(parse_publication("name = 3")).empty());
}

TEST_P(MatcherKinds, MultipleSubscriptionsSameAttribute) {
  for (int i = 1; i <= 10; ++i) {
    matcher_->add(SubscriptionId{static_cast<std::uint64_t>(i)},
                  {Predicate{"x", RelOp::kGe, Value{i}}, Predicate{"x", RelOp::kLe, Value{i + 2}}});
  }
  const auto hits = matcher_->match(parse_publication("x = 5"));
  EXPECT_EQ(hits, (std::vector<SubscriptionId>{SubscriptionId{3}, SubscriptionId{4},
                                               SubscriptionId{5}}));
}

TEST_P(MatcherKinds, RemoveSubscription) {
  matcher_->add(SubscriptionId{1}, preds({"x > 0"}));
  matcher_->add(SubscriptionId{2}, preds({"x > 0"}));
  EXPECT_EQ(matcher_->size(), 2u);
  EXPECT_TRUE(matcher_->remove(SubscriptionId{1}));
  EXPECT_FALSE(matcher_->remove(SubscriptionId{1}));
  EXPECT_FALSE(matcher_->contains(SubscriptionId{1}));
  EXPECT_TRUE(matcher_->contains(SubscriptionId{2}));
  EXPECT_EQ(matcher_->match(parse_publication("x = 1")),
            std::vector<SubscriptionId>{SubscriptionId{2}});
}

TEST_P(MatcherKinds, DuplicateIdThrows) {
  matcher_->add(SubscriptionId{1}, preds({"x > 0"}));
  EXPECT_THROW(matcher_->add(SubscriptionId{1}, preds({"y > 0"})), std::invalid_argument);
}

TEST_P(MatcherKinds, EvolvingPredicateRejected) {
  EXPECT_THROW(matcher_->add(SubscriptionId{1}, preds({"x > 2 * t"})), std::invalid_argument);
}

TEST_P(MatcherKinds, ExtraPublicationAttributesIgnored) {
  matcher_->add(SubscriptionId{1}, preds({"x > 0"}));
  EXPECT_EQ(matcher_->match(parse_publication("x = 1; y = 2; z = 'w'")).size(), 1u);
}

TEST_P(MatcherKinds, NeMatchesIncomparableTypes) {
  matcher_->add(SubscriptionId{1}, preds({"x != 5"}));
  EXPECT_EQ(matcher_->match(parse_publication("x = 'str'")).size(), 1u);
  EXPECT_EQ(matcher_->match(parse_publication("x = 4")).size(), 1u);
  EXPECT_TRUE(matcher_->match(parse_publication("x = 5")).empty());
}

TEST_P(MatcherKinds, ReAddAfterRemove) {
  matcher_->add(SubscriptionId{1}, preds({"x > 0"}));
  matcher_->remove(SubscriptionId{1});
  matcher_->add(SubscriptionId{1}, preds({"x < 0"}));
  EXPECT_TRUE(matcher_->match(parse_publication("x = 1")).empty());
  EXPECT_EQ(matcher_->match(parse_publication("x = -1")).size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllMatchers, MatcherKinds,
                         ::testing::Values(MatcherKind::kBruteForce, MatcherKind::kCounting,
                                           MatcherKind::kChurn),
                         [](const auto& info) {
                           switch (info.param) {
                             case MatcherKind::kBruteForce: return "BruteForce";
                             case MatcherKind::kCounting: return "Counting";
                             case MatcherKind::kChurn: return "Churn";
                           }
                           return "unknown";
                         });

TEST(ChurnMatcher, PredicateCountTracked) {
  ChurnMatcher m;
  m.add(SubscriptionId{1}, preds({"x > 0", "y < 3"}));
  EXPECT_EQ(m.predicate_count(), 2u);
  m.remove(SubscriptionId{1});
  EXPECT_EQ(m.predicate_count(), 0u);
}

TEST(CountingMatcher, PredicateCountTracked) {
  CountingMatcher m;
  m.add(SubscriptionId{1}, preds({"x > 0", "y < 3"}));
  EXPECT_EQ(m.predicate_count(), 2u);
  m.remove(SubscriptionId{1});
  EXPECT_EQ(m.predicate_count(), 0u);
}

}  // namespace
}  // namespace evps
