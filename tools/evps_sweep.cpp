// evps-sweep: Monte-Carlo capacity-planning harness.
//
// Runs N independently seeded replicas of a scenario (optionally across
// worker threads — every replica is bit-deterministic in (scenario, seed),
// so the worker count never changes a single output bit), aggregates the
// replica metrics into distributions with batch-means 95 % confidence
// intervals, prints a summary table, and records everything under the
// "sweep" section of a shared BENCH JSON file for the regression comparator
// (scripts/sweep_compare.py).
//
//   evps-sweep --scenario=all --replicas=200 --workers=4 --out=BENCH_sweep.json
//
// --selfcheck re-runs replica 0 of every swept scenario and requires the
// re-run to reproduce the recorded metrics bit for bit (and all defined CIs
// to be finite) — the smoke-level determinism gate scripts/check.sh runs.
//
// Exit codes: 0 ok, 1 self-check failure, 2 usage/IO error.
#include <cmath>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/report.hpp"
#include "workloads/sweep.hpp"

namespace {

using namespace evps;

struct Options {
  std::string scenario = "all";
  SweepOptions sweep;
  std::string out = "BENCH_sweep.json";
  bool selfcheck = false;
  bool quiet = false;
};

bool parse_system(const std::string& name, SystemKind& out) {
  if (name == "resub") out = SystemKind::kResub;
  else if (name == "parametric") out = SystemKind::kParametric;
  else if (name == "ves") out = SystemKind::kVes;
  else if (name == "lees") out = SystemKind::kLees;
  else if (name == "clees") out = SystemKind::kClees;
  else if (name == "hybrid") out = SystemKind::kHybrid;
  else return false;
  return true;
}

bool parse_matcher(const std::string& name, MatcherKind& out) {
  if (name == "brute") out = MatcherKind::kBruteForce;
  else if (name == "counting") out = MatcherKind::kCounting;
  else if (name == "churn") out = MatcherKind::kChurn;
  else return false;
  return true;
}

std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

std::string metric_json(const MetricSummary& m) {
  std::ostringstream os;
  os << "{\"n\":" << m.stats.count() << ",\"mean\":" << json_num(m.stats.mean())
     << ",\"ci95\":" << (m.ci.defined ? json_num(m.ci.half_width) : "null")
     << ",\"batches\":" << m.ci.batches << ",\"p50\":" << json_num(m.p50)
     << ",\"p90\":" << json_num(m.p90) << ",\"p99\":" << json_num(m.p99)
     << ",\"min\":" << json_num(m.stats.min()) << ",\"max\":" << json_num(m.stats.max())
     << ",\"stddev\":" << json_num(m.stats.stddev()) << "}";
  return os.str();
}

std::string ci_cell(const MetricSummary& m) {
  if (!m.ci.defined) return Table::fmt(m.stats.mean(), 4) + " (n/a)";
  return Table::fmt(m.stats.mean(), 4) + " +- " + Table::fmt(m.ci.half_width, 4);
}

void print_scenario(const SweepResult& r) {
  print_banner(std::string("sweep: ") + to_string(r.options.scenario) + " (" +
               std::to_string(r.options.replicas) + " replicas, seed " +
               std::to_string(r.options.root_seed) + ")");
  Table table({"metric", "mean +- ci95", "p50", "p90", "p99", "min", "max"});
  const auto row = [&](const char* name, const MetricSummary& m, int prec) {
    table.add_row({name, ci_cell(m), Table::fmt(m.p50, prec), Table::fmt(m.p90, prec),
                   Table::fmt(m.p99, prec), Table::fmt(m.stats.min(), prec),
                   Table::fmt(m.stats.max(), prec)});
  };
  row("latency mean (s)", r.latency_mean, 4);
  row("latency p99 (s)", r.latency_p99, 4);
  row("accuracy", r.accuracy, 4);
  row("deliveries", r.deliveries, 0);
  row("overlay msgs", r.overlay_msgs, 0);
  row("msgs/delivery", r.msgs_per_delivery, 2);
  row("subscription msgs", r.subscription_msgs, 0);
  table.print();
  std::cout << "\n";
}

std::string scenario_json(const SweepResult& r) {
  std::ostringstream os;
  os << "{\"replicas\":" << r.options.replicas << ",\"root_seed\":" << r.options.root_seed
     << ",\"first_fingerprint\":\"" << std::hex << r.replicas.front().fingerprint << std::dec
     << "\",\"latency_mean_s\":" << metric_json(r.latency_mean)
     << ",\"latency_p99_s\":" << metric_json(r.latency_p99)
     << ",\"accuracy\":" << metric_json(r.accuracy)
     << ",\"deliveries\":" << metric_json(r.deliveries)
     << ",\"overlay_msgs\":" << metric_json(r.overlay_msgs)
     << ",\"msgs_per_delivery\":" << metric_json(r.msgs_per_delivery)
     << ",\"subscription_msgs\":" << metric_json(r.subscription_msgs) << "}";
  return os.str();
}

/// Re-run replica 0 and require bit-identical metrics plus finite CIs.
bool selfcheck(const SweepResult& r) {
  const ReplicaMetrics again =
      run_replica(r.options, derive_replica_seed(r.options.root_seed, 0));
  if (!(again == r.replicas.front())) {
    std::cerr << "evps-sweep: SELF-CHECK FAILED: replica 0 of " << to_string(r.options.scenario)
              << " did not reproduce bit-identically\n";
    return false;
  }
  for (const MetricSummary* m : {&r.latency_mean, &r.latency_p99, &r.accuracy, &r.deliveries,
                                 &r.overlay_msgs, &r.msgs_per_delivery, &r.subscription_msgs}) {
    if (m->ci.defined && !std::isfinite(m->ci.half_width)) {
      std::cerr << "evps-sweep: SELF-CHECK FAILED: non-finite CI in "
                << to_string(r.options.scenario) << "\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  std::string engine = "lees";
  std::string matcher = "counting";
  std::string routing = "flooding";
  bool help = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto num_opt = [&arg](std::string_view prefix, auto& out) {
      if (!arg.starts_with(prefix)) return false;
      out = static_cast<std::remove_reference_t<decltype(out)>>(
          std::stod(std::string(arg.substr(prefix.size()))));
      return true;
    };
    try {
      if (arg.starts_with("--scenario=")) {
        opts.scenario = std::string(arg.substr(11));
      } else if (arg.starts_with("--engine=")) {
        engine = std::string(arg.substr(9));
      } else if (arg.starts_with("--matcher=")) {
        matcher = std::string(arg.substr(10));
      } else if (arg.starts_with("--routing=")) {
        routing = std::string(arg.substr(10));
      } else if (arg.starts_with("--out=")) {
        opts.out = std::string(arg.substr(6));
      } else if (arg == "--selfcheck") {
        opts.selfcheck = true;
      } else if (arg == "--quiet") {
        opts.quiet = true;
      } else if (num_opt("--replicas=", opts.sweep.replicas) ||
                 num_opt("--seed=", opts.sweep.root_seed) ||
                 num_opt("--workers=", opts.sweep.workers) ||
                 num_opt("--shards=", opts.sweep.matcher_threads) ||
                 num_opt("--batch=", opts.sweep.batch_size) ||
                 num_opt("--link-batch=", opts.sweep.link_batch_size) ||
                 num_opt("--scale=", opts.sweep.scale) ||
                 num_opt("--eps=", opts.sweep.latency_eps)) {
        // handled
      } else if (arg == "--help" || arg == "-h") {
        help = true;
      } else {
        std::cerr << "evps-sweep: unknown option " << arg << "\n";
        return 2;
      }
    } catch (const std::exception&) {
      std::cerr << "evps-sweep: bad value in " << arg << "\n";
      return 2;
    }
  }

  bool usage_error = false;
  if (!parse_system(engine, opts.sweep.system)) {
    std::cerr << "evps-sweep: unknown engine " << engine << "\n";
    usage_error = true;
  }
  if (!parse_matcher(matcher, opts.sweep.matcher)) {
    std::cerr << "evps-sweep: unknown matcher " << matcher << "\n";
    usage_error = true;
  }
  if (routing == "advertisement") {
    opts.sweep.routing = RoutingMode::kAdvertisement;
  } else if (routing != "flooding") {
    std::cerr << "evps-sweep: unknown routing mode " << routing << "\n";
    usage_error = true;
  }
  std::vector<SweepScenario> scenarios;
  if (opts.scenario == "all") {
    scenarios = {SweepScenario::kGame, SweepScenario::kHft, SweepScenario::kGameRotated};
  } else if (const auto s = parse_sweep_scenario(opts.scenario)) {
    scenarios = {*s};
  } else {
    std::cerr << "evps-sweep: unknown scenario " << opts.scenario << "\n";
    usage_error = true;
  }
  if (opts.sweep.replicas == 0 || opts.sweep.workers == 0) {
    std::cerr << "evps-sweep: --replicas and --workers must be >= 1\n";
    usage_error = true;
  }
  if (help || usage_error) {
    std::cerr
        << "usage: evps-sweep [options]\n"
        << "Monte-Carlo capacity planning: independently seeded scenario replicas,\n"
        << "aggregated into distributions with batch-means 95% confidence intervals.\n"
        << "  --scenario=NAME          game|hft|game_rotated|all (default all)\n"
        << "  --replicas=N             replicas per scenario (default 200)\n"
        << "  --seed=R                 root seed (default 1)\n"
        << "  --workers=N              worker threads incl. caller (default 1)\n"
        << "  --engine=KIND            resub|parametric|ves|lees|clees|hybrid (default lees)\n"
        << "  --matcher=KIND           brute|counting|churn (default counting)\n"
        << "  --routing=MODE           flooding|advertisement, hft only (default flooding)\n"
        << "  --shards=N               matcher shards per broker (default 0 = single)\n"
        << "  --batch=N                broker publication batch size (default 1)\n"
        << "  --link-batch=N           per-link batch size (default 1)\n"
        << "  --scale=F                population scale factor (default 1.0)\n"
        << "  --eps=F                  latency sketch rank error (default 0.005)\n"
        << "  --out=PATH               JSON results file (default BENCH_sweep.json)\n"
        << "  --selfcheck              re-run replica 0, require bit-identical metrics\n"
        << "  --quiet                  suppress the summary tables\n"
        << "Exit codes: 0 ok, 1 self-check failure, 2 usage/IO error.\n";
    return help && !usage_error ? 0 : 2;
  }

  std::ostringstream body;
  body << "{\"config\":{\"engine\":\"" << engine << "\",\"matcher\":\"" << matcher
       << "\",\"routing\":\"" << routing << "\",\"workers\":" << opts.sweep.workers
       << ",\"shards\":" << opts.sweep.matcher_threads << ",\"batch\":" << opts.sweep.batch_size
       << ",\"link_batch\":" << opts.sweep.link_batch_size
       << ",\"scale\":" << json_num(opts.sweep.scale)
       << ",\"eps\":" << json_num(opts.sweep.latency_eps) << "},\"scenarios\":{";
  bool first = true;
  for (const SweepScenario scenario : scenarios) {
    SweepOptions so = opts.sweep;
    so.scenario = scenario;
    const SweepResult result = run_sweep(so);
    if (!opts.quiet) print_scenario(result);
    if (opts.selfcheck && !selfcheck(result)) return 1;
    body << (first ? "" : ",") << "\"" << to_string(scenario) << "\":" << scenario_json(result);
    first = false;
  }
  body << "}}";
  if (!write_json_section(opts.out, "sweep", body.str())) {
    std::cerr << "evps-sweep: cannot write " << opts.out << "\n";
    return 2;
  }
  if (!opts.quiet) std::cout << "results appended to " << opts.out << " (section \"sweep\")\n";
  return 0;
}
