// Micro-benchmarks: evolution expression parsing and evaluation — the
// per-predicate cost that LEES pays on every publication.
#include <benchmark/benchmark.h>

#include "expr/parser.hpp"
#include "gbench_main.hpp"
#include "expr/variable_registry.hpp"
#include "message/predicate.hpp"

namespace {

using namespace evps;

void BM_ParseSimple(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(parse_expr("-3 + t"));
  }
}
BENCHMARK(BM_ParseSimple);

void BM_ParseGameSubscription(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(parse_expr("(3 + 1.5 * t) * v"));
  }
}
BENCHMARK(BM_ParseGameSubscription);

void BM_EvalLinear(benchmark::State& state) {
  const auto expr = parse_expr("-3 + 1.5 * t");
  const MapEnv env{{"t", 2.0}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr->eval(env));
  }
}
BENCHMARK(BM_EvalLinear);

void BM_EvalVisibilityScaled(benchmark::State& state) {
  const auto expr = parse_expr("(3 + 1.5 * t) * v");
  const MapEnv env{{"t", 2.0}, {"v", 0.5}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr->eval(env));
  }
}
BENCHMARK(BM_EvalVisibilityScaled);

void BM_EvalThroughRegistryScope(benchmark::State& state) {
  const auto expr = parse_expr("(3 + 1.5 * t) * v");
  VariableRegistry registry;
  registry.set("v", 0.5, SimTime::zero());
  const EvalScope scope{&registry, SimTime::from_seconds(2), SimTime::zero()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr->eval(scope));
  }
}
BENCHMARK(BM_EvalThroughRegistryScope);

void BM_EvalDeepRegistryHistory(benchmark::State& state) {
  const auto expr = parse_expr("10 * v");
  VariableRegistry registry;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    registry.set("v", i * 0.001, SimTime::from_seconds(i));
  }
  const EvalScope scope{&registry, SimTime::from_seconds(state.range(0) / 2.0),
                        SimTime::zero()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr->eval(scope));
  }
}
BENCHMARK(BM_EvalDeepRegistryHistory)->Arg(16)->Arg(256)->Arg(4096);

void BM_MaterializePredicate(benchmark::State& state) {
  const Predicate pred{"x", RelOp::kGe, parse_expr("-3 + 1.5 * t")};
  const MapEnv env{{"t", 2.0}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(pred.materialize(env));
  }
}
BENCHMARK(BM_MaterializePredicate);

}  // namespace

int main(int argc, char** argv) { return evps_bench::run(argc, argv, "BENCH_expr.json"); }
