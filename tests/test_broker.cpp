// Single-broker behaviour: client attach, subscribe/publish/deliver,
// unsubscribe, parametric updates, variable updates, stats.
#include <gtest/gtest.h>

#include "broker/overlay.hpp"
#include "message/codec.hpp"

namespace evps {
namespace {

SimTime sec(double s) { return SimTime::from_seconds(s); }

BrokerConfig engine_config(EngineKind kind) {
  BrokerConfig cfg;
  cfg.engine.kind = kind;
  return cfg;
}

struct SingleBrokerTest : ::testing::Test {
  Simulator sim;
  Overlay overlay{sim};
  Broker& broker = overlay.add_broker("b0", engine_config(EngineKind::kLees));
  PubSubClient& alice = overlay.add_client("alice");
  PubSubClient& bob = overlay.add_client("bob");
  PubSubClient& pubber = overlay.add_client("pubber");

  void SetUp() override {
    alice.connect(broker, Duration::millis(1));
    bob.connect(broker, Duration::millis(1));
    pubber.connect(broker, Duration::millis(1));
  }
};

TEST_F(SingleBrokerTest, SubscribeAndDeliver) {
  alice.subscribe("x >= 0; x <= 10");
  sim.run_until(sec(0.1));
  pubber.publish("x = 5");
  pubber.publish("x = 50");
  sim.run_until(sec(1));
  ASSERT_EQ(alice.deliveries().size(), 1u);
  EXPECT_EQ(alice.deliveries()[0].pub.get("x")->as_int(), 5);
  EXPECT_TRUE(bob.deliveries().empty());
  EXPECT_EQ(broker.stats().publications, 2u);
  EXPECT_EQ(broker.stats().deliveries, 1u);
}

TEST_F(SingleBrokerTest, DeliveryLatencyIsLinkRoundTrip) {
  alice.subscribe("x >= 0");
  sim.run_until(sec(0.1));
  pubber.publish("x = 1");
  sim.run_until(sec(10));
  ASSERT_EQ(alice.deliveries().size(), 1u);
  // publish at 0.1: 1ms to broker + 1ms to subscriber.
  EXPECT_EQ(alice.deliveries()[0].when, sec(0.1) + Duration::millis(2));
}

TEST_F(SingleBrokerTest, EvolvingSubscriptionDelivers) {
  alice.subscribe("x >= -3 + t; x <= 3 + t");
  sim.run_until(sec(0.1));
  pubber.publish("x = 4");  // outside [approx -2.9, 3.1]
  sim.run_until(sec(2));
  pubber.publish("x = 4");  // inside [-1, 5] at t~2
  sim.run_until(sec(3));
  ASSERT_EQ(alice.deliveries().size(), 1u);
}

TEST_F(SingleBrokerTest, UnsubscribeStopsDeliveries) {
  const auto id = alice.subscribe("x >= 0");
  sim.run_until(sec(0.1));
  pubber.publish("x = 1");
  sim.run_until(sec(0.2));
  alice.unsubscribe(id);
  sim.run_until(sec(0.3));
  pubber.publish("x = 2");
  sim.run_until(sec(1));
  ASSERT_EQ(alice.deliveries().size(), 1u);
  EXPECT_EQ(broker.subscription_count(), 0u);
}

TEST_F(SingleBrokerTest, MultipleSubscribersSamePublication) {
  alice.subscribe("x >= 0");
  bob.subscribe("x >= 0");
  sim.run_until(sec(0.1));
  pubber.publish("x = 1");
  sim.run_until(sec(1));
  EXPECT_EQ(alice.deliveries().size(), 1u);
  EXPECT_EQ(bob.deliveries().size(), 1u);
}

TEST_F(SingleBrokerTest, ClientReceivesPublicationOncePerManyMatchingSubs) {
  alice.subscribe("x >= 0");
  alice.subscribe("x >= -5");
  alice.subscribe("x <= 100");
  sim.run_until(sec(0.1));
  pubber.publish("x = 1");
  sim.run_until(sec(1));
  EXPECT_EQ(alice.deliveries().size(), 1u);  // destination-level dedup
}

TEST_F(SingleBrokerTest, SubscriptionStatsCounted) {
  const auto id = alice.subscribe("x >= 0");
  alice.unsubscribe(id);
  sim.run_until(sec(1));
  EXPECT_EQ(broker.stats().subscribes, 1u);
  EXPECT_EQ(broker.stats().unsubscribes, 1u);
  EXPECT_EQ(broker.stats().subscription_msgs, 2u);
}

TEST_F(SingleBrokerTest, ResubscribeIsTwoMessages) {
  const auto id = alice.subscribe("x >= 0");
  sim.run_until(sec(0.1));
  alice.resubscribe(id, parse_subscription("x >= 5"));
  sim.run_until(sec(1));
  EXPECT_EQ(broker.stats().subscription_msgs, 3u);  // sub + unsub + sub
  pubber.publish("x = 3");
  pubber.publish("x = 7");
  sim.run_until(sec(2));
  EXPECT_EQ(alice.deliveries().size(), 1u);
}

TEST_F(SingleBrokerTest, VarUpdateSetsBrokerVariable) {
  alice.subscribe("x <= 10 * v");
  alice.send_var_update("v", 1.0);
  sim.run_until(sec(0.1));
  pubber.publish("x = 5");
  sim.run_until(sec(0.2));
  alice.send_var_update("v", 0.1);
  sim.run_until(sec(0.3));
  pubber.publish("x = 5");
  sim.run_until(sec(1));
  EXPECT_EQ(alice.deliveries().size(), 1u);
  EXPECT_EQ(broker.stats().var_updates, 2u);
}

TEST_F(SingleBrokerTest, SetVariableDirectly) {
  broker.set_variable_local("v", 0.5);
  EXPECT_EQ(broker.variables().get("v"), 0.5);
}

TEST_F(SingleBrokerTest, DuplicateSubscriptionIdIgnored) {
  Subscription sub = parse_subscription("x >= 0");
  sub.set_id(SubscriptionId{12345});
  alice.subscribe(sub);
  Subscription dup = parse_subscription("x >= 100");
  dup.set_id(SubscriptionId{12345});
  bob.subscribe(dup);  // same id: broker keeps the first
  sim.run_until(sec(0.1));
  EXPECT_EQ(broker.subscription_count(), 1u);
  pubber.publish("x = 1");
  sim.run_until(sec(1));
  EXPECT_EQ(alice.deliveries().size(), 1u);
  EXPECT_TRUE(bob.deliveries().empty());
}

TEST_F(SingleBrokerTest, ClientValidation) {
  PubSubClient& stray = overlay.add_client("stray");
  EXPECT_THROW(stray.publish("x = 1"), std::logic_error);
  EXPECT_THROW(stray.subscribe("x > 1"), std::logic_error);
  EXPECT_THROW(stray.unsubscribe(SubscriptionId{1}), std::logic_error);
  stray.connect(broker, Duration::zero());
  EXPECT_THROW(stray.connect(broker, Duration::zero()), std::logic_error);
}

TEST_F(SingleBrokerTest, ParametricUpdateThroughBroker) {
  Broker& pbroker = overlay.add_broker("pb", engine_config(EngineKind::kParametric));
  PubSubClient& carol = overlay.add_client("carol");
  PubSubClient& feed = overlay.add_client("feed");
  carol.connect(pbroker, Duration::millis(1));
  feed.connect(pbroker, Duration::millis(1));
  const auto id = carol.subscribe("price >= 10; price <= 12");
  sim.run_until(sec(0.1));
  feed.publish("price = 11");
  sim.run_until(sec(0.2));
  carol.update_subscription(id, {Value{20.0}, Value{22.0}});
  sim.run_until(sec(0.3));
  feed.publish("price = 11");
  feed.publish("price = 21");
  sim.run_until(sec(1));
  ASSERT_EQ(carol.deliveries().size(), 2u);
  EXPECT_DOUBLE_EQ(*carol.deliveries()[1].pub.get("price")->numeric(), 21.0);
  EXPECT_EQ(pbroker.stats().sub_updates, 1u);
  EXPECT_EQ(pbroker.stats().subscription_msgs, 2u);  // subscribe + update
}

TEST_F(SingleBrokerTest, PublicationEntryTimeStamped) {
  Broker& vbroker = overlay.add_broker("vb", engine_config(EngineKind::kVes));
  PubSubClient& sub = overlay.add_client("sub");
  PubSubClient& feed = overlay.add_client("feed2");
  sub.connect(vbroker, Duration::millis(3));
  feed.connect(vbroker, Duration::millis(3));
  sub.subscribe("x >= 0");
  sim.run_until(sec(0.1));
  feed.publish("x = 1");
  sim.run_until(sec(1));
  ASSERT_EQ(sub.deliveries().size(), 1u);
  EXPECT_EQ(sub.deliveries()[0].pub.entry_time(), sec(0.1) + Duration::millis(3));
}

}  // namespace
}  // namespace evps
