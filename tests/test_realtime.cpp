// Real-time (wall-clock, threaded) host: the paper's actual implementation
// architecture (Section V-A). Timing assertions use generous tolerances.
#include <gtest/gtest.h>

#include <atomic>

#include "evolving/lees_engine.hpp"
#include "evolving/ves_engine.hpp"
#include "realtime/realtime_host.hpp"
#include "test_util.hpp"

namespace evps {
namespace {

using testutil::make_sub;

TEST(RealTimeHost, NowAdvances) {
  RealTimeHost host;
  const SimTime a = host.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const SimTime b = host.now();
  EXPECT_GT(b, a);
  EXPECT_GE((b - a).count_micros(), 15'000);
}

TEST(RealTimeHost, PostRunsOnWorkerThread) {
  RealTimeHost host;
  std::atomic<bool> ran{false};
  std::thread::id worker_id;
  host.invoke([&] {
    ran = true;
    worker_id = std::this_thread::get_id();
  });
  EXPECT_TRUE(ran.load());
  EXPECT_NE(worker_id, std::this_thread::get_id());
}

TEST(RealTimeHost, InvokeFromWorkerThreadDoesNotDeadlock) {
  RealTimeHost host;
  std::atomic<bool> inner{false};
  host.invoke([&] { host.invoke([&] { inner = true; }); });
  EXPECT_TRUE(inner.load());
}

TEST(RealTimeHost, InvokePropagatesExceptions) {
  RealTimeHost host;
  EXPECT_THROW(host.invoke([] { throw std::runtime_error("boom"); }), std::runtime_error);
}

TEST(RealTimeHost, ScheduledTasksFireInOrder) {
  RealTimeHost host;
  std::vector<int> order;
  std::atomic<int> done{0};
  host.invoke([&] {
    host.schedule(Duration::millis(30), [&] {
      order.push_back(2);
      ++done;
    });
    host.schedule(Duration::millis(5), [&] {
      order.push_back(1);
      ++done;
    });
  });
  for (int i = 0; i < 200 && done.load() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(done.load(), 2);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(RealTimeHost, StopIsIdempotent) {
  RealTimeHost host;
  host.stop();
  host.stop();
}

TEST(RealTimeHost, SetVariableVisibleToEngineOps) {
  RealTimeHost host;
  host.set_variable("v", 0.5);
  double seen = 0;
  host.invoke([&] { seen = host.variables().get("v").value_or(-1); });
  EXPECT_DOUBLE_EQ(seen, 0.5);
}

TEST(RealTimeVes, VersionsEvolveWithWallClock) {
  RealTimeHost host;
  EngineConfig cfg{.kind = EngineKind::kVes};
  VesEngine engine{cfg};

  // x <= 1000 * t with MEI 20 ms: after ~100 ms the version admits x=10.
  host.invoke([&] {
    engine.add(make_sub(1, "[mei=0.02] x <= 1000 * t", host.now()), NodeId{1}, host);
  });
  auto matches = [&] {
    bool hit = false;
    host.invoke([&] {
      std::vector<NodeId> dests;
      engine.match(parse_publication("x = 10"), nullptr, host, dests);
      hit = !dests.empty();
    });
    return hit;
  };
  EXPECT_FALSE(matches());  // t ~ 0: version is x <= ~0
  bool hit = false;
  for (int i = 0; i < 100 && !hit; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    hit = matches();
  }
  EXPECT_TRUE(hit);
  std::uint64_t evolutions = 0;
  host.invoke([&] { evolutions = engine.costs().evolutions; });
  EXPECT_GE(evolutions, 1u);
}

TEST(RealTimeLees, LazyEvaluationUsesWallClock) {
  RealTimeHost host;
  EngineConfig cfg{.kind = EngineKind::kLees};
  LeesEngine engine{cfg};
  host.invoke([&] { engine.add(make_sub(1, "x <= 1000 * t", host.now()), NodeId{1}, host); });
  bool hit = false;
  for (int i = 0; i < 100 && !hit; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    host.invoke([&] {
      std::vector<NodeId> dests;
      engine.match(parse_publication("x = 10"), nullptr, host, dests);
      hit = !dests.empty();
    });
  }
  EXPECT_TRUE(hit);  // within ~1 s, 1000*t exceeds 10
}

}  // namespace
}  // namespace evps
