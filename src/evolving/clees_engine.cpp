#include "evolving/clees_engine.hpp"

#include <algorithm>
#include <unordered_set>

namespace evps {

void CleesEngine::do_add(const Installed& entry, EngineHost& /*host*/) {
  const auto& sub = *entry.sub;
  if (!sub.is_evolving()) {
    matcher_->add(sub.id(), sub.predicates());
    return;
  }
  auto static_part = sub.static_predicates();
  EvolvingPart part;
  part.id = sub.id();
  part.sub = entry.sub;
  part.evolving_preds = sub.evolving_predicates();
  part.has_static_part = !static_part.empty();
  if (part.has_static_part) matcher_->add(sub.id(), static_part);
  storage_[entry.dest].push_back(std::move(part));
  ++evolving_count_;
}

void CleesEngine::do_remove(const Installed& entry, EngineHost& /*host*/) {
  const auto& sub = *entry.sub;
  if (!sub.is_evolving()) {
    matcher_->remove(sub.id());
    return;
  }
  if (!sub.is_fully_evolving()) matcher_->remove(sub.id());
  const auto it = storage_.find(entry.dest);
  if (it != storage_.end()) {
    auto& parts = it->second;
    const auto pos = std::find_if(parts.begin(), parts.end(),
                                  [&](const EvolvingPart& p) { return p.id == sub.id(); });
    if (pos != parts.end()) {
      parts.erase(pos);
      --evolving_count_;
    }
    if (parts.empty()) storage_.erase(it);
  }
}

bool CleesEngine::static_preds_match(const std::vector<Predicate>& preds,
                                     const Publication& pub) {
  for (const auto& p : preds) {
    const Value* v = pub.get(p.attribute());
    if (v == nullptr || !p.matches(*v)) return false;
  }
  return true;
}

void CleesEngine::do_match(const Publication& pub, const VariableSnapshot* snapshot,
                           EngineHost& host, std::vector<NodeId>& destinations) {
  std::vector<SubscriptionId> m1;
  {
    const ScopedTimer timer(costs_.match);
    matcher_->match(pub, m1);
  }
  std::unordered_set<SubscriptionId> m1_set(m1.begin(), m1.end());

  std::unordered_set<NodeId> done;
  for (const auto id : m1) {
    const auto& entry = installed().at(id);
    if (!entry.sub->is_evolving()) {
      destinations.push_back(entry.dest);
      done.insert(entry.dest);
    }
  }

  const ScopedTimer timer(costs_.lazy_eval);
  const SimTime now = host.now();
  const auto& registry = host.variables();
  for (auto& [dest, parts] : storage_) {
    if (done.contains(dest)) continue;
    for (auto& part : parts) {
      if (part.has_static_part && !m1_set.contains(part.id)) continue;

      bool matched = false;
      // Snapshot-consistency mode bypasses the cache: cached versions are
      // anchored at broker-local time, which a piggybacked snapshot
      // invalidates (the hybrid is future work in the paper).
      if (snapshot == nullptr && now < part.cache.expires) {
        ++costs_.cache_hits;
        matched = static_preds_match(part.cache.preds, pub);
      } else {
        ++costs_.cache_misses;
        ++costs_.lazy_evaluations;
        const EvalScope scope = make_scope(*part.sub, now, snapshot, registry, pub.entry_time());
        std::vector<Predicate> version;
        version.reserve(part.evolving_preds.size());
        for (const auto& p : part.evolving_preds) version.push_back(p.materialize(scope));
        matched = static_preds_match(version, pub);
        if (snapshot == nullptr) {
          part.cache.preds = std::move(version);
          part.cache.expires = now + effective_tt(*part.sub);
        }
      }
      if (matched) {
        destinations.push_back(dest);
        break;  // early exit: destination settled
      }
    }
  }
}

}  // namespace evps
