file(REMOVE_RECURSE
  "CMakeFiles/evps_common.dir/logging.cpp.o"
  "CMakeFiles/evps_common.dir/logging.cpp.o.d"
  "CMakeFiles/evps_common.dir/string_util.cpp.o"
  "CMakeFiles/evps_common.dir/string_util.cpp.o.d"
  "CMakeFiles/evps_common.dir/value.cpp.o"
  "CMakeFiles/evps_common.dir/value.cpp.o.d"
  "libevps_common.a"
  "libevps_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evps_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
