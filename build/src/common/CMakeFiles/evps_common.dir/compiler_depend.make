# Empty compiler generated dependencies file for evps_common.
# This may be replaced when dependencies are built.
