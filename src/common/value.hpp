// The attribute value domain of the content-based data model.
//
// Publications carry (attribute, Value) pairs; predicates compare publication
// values against constants or against the result of evolution functions.
// Values are integers, doubles, or strings. Numeric values compare across
// the int/double divide (2 == 2.0); strings only compare with strings.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <variant>

namespace evps {

class Value {
 public:
  using Storage = std::variant<std::int64_t, double, std::string>;

  Value() noexcept : v_(std::int64_t{0}) {}
  Value(std::int64_t i) noexcept : v_(i) {}          // NOLINT(google-explicit-constructor)
  Value(int i) noexcept : v_(std::int64_t{i}) {}     // NOLINT(google-explicit-constructor)
  Value(double d) noexcept : v_(d) {}                // NOLINT(google-explicit-constructor)
  Value(std::string s) noexcept : v_(std::move(s)) {}  // NOLINT(google-explicit-constructor)
  Value(const char* s) : v_(std::string(s)) {}         // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool is_int() const noexcept { return std::holds_alternative<std::int64_t>(v_); }
  [[nodiscard]] bool is_double() const noexcept { return std::holds_alternative<double>(v_); }
  [[nodiscard]] bool is_string() const noexcept { return std::holds_alternative<std::string>(v_); }
  [[nodiscard]] bool is_numeric() const noexcept { return !is_string(); }

  [[nodiscard]] std::int64_t as_int() const { return std::get<std::int64_t>(v_); }
  [[nodiscard]] double as_double() const { return std::get<double>(v_); }
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(v_); }

  /// Numeric view: int promoted to double. Empty for strings.
  [[nodiscard]] std::optional<double> numeric() const noexcept {
    if (is_int()) return static_cast<double>(as_int());
    if (is_double()) return as_double();
    return std::nullopt;
  }

  /// Three-way comparison in the content-based matching sense.
  /// Returns nullopt when the values are incomparable (string vs numeric).
  [[nodiscard]] std::optional<int> compare(const Value& rhs) const noexcept;

  /// Exact equality (type-aware; 2 and 2.0 ARE equal, "2" and 2 are not).
  friend bool operator==(const Value& a, const Value& b) noexcept {
    auto c = a.compare(b);
    return c.has_value() && *c == 0;
  }

  [[nodiscard]] std::string to_string() const;

  /// Parse from text: integers, doubles, single-quoted or bare strings.
  [[nodiscard]] static Value parse(std::string_view text);

  friend std::ostream& operator<<(std::ostream& os, const Value& v) {
    return os << v.to_string();
  }

  [[nodiscard]] const Storage& storage() const noexcept { return v_; }

 private:
  Storage v_;
};

}  // namespace evps
