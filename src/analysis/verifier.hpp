// ExprProgram verifier.
//
// `ExprProgram::eval` is a trusting stack machine: it indexes `stack.back()`
// and `stack[base + i]` without bounds checks because the compiler
// precomputes `max_stack()` and emits structurally sound postfix. That trust
// is fine for programs produced by `ExprProgram::compile`, but programs can
// also arrive assembled by tools or (in the future) deserialized off the
// wire. The verifier is an abstract interpretation over stack *depths* that
// proves, before a program is installed into LazyStorage/VES state:
//
//   * every instruction has its operands on the stack (no underflow);
//   * n-ary argc fields are in range (kMin/kMax >= 1, kClamp == 3,
//     kStep == 1) and the opcode byte itself is a known Op;
//   * every kLoadVar names a VarId interned in the process-wide
//     VariableTable (so EvalScope slot lookups cannot index out of range);
//   * the program leaves exactly one value on the stack;
//   * the declared max_stack() covers the actual peak depth, so the
//     evaluator's reserve() is sufficient and pushes never reallocate
//     mid-walk assumptions.
//
// Engines call verify_or_throw at install time; broker subscribe paths
// surface the diagnostic and reject the subscription instead of asserting in
// the per-publication hot path.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

#include "expr/program.hpp"

namespace evps {

struct VerifyResult {
  bool ok = true;
  /// Human-readable diagnostic when !ok (empty otherwise).
  std::string message;
  /// Index of the offending instruction, or size() for whole-program faults
  /// (empty program, wrong final depth, understated max_stack).
  std::size_t insn_index = 0;

  explicit operator bool() const noexcept { return ok; }
};

/// Statically check `prog` against the invariants above. Never throws.
[[nodiscard]] VerifyResult verify_program(const ExprProgram& prog) noexcept;

class VerifyError : public std::runtime_error {
 public:
  explicit VerifyError(const VerifyResult& result)
      : std::runtime_error("ExprProgram verification failed: " + result.message),
        insn_index_(result.insn_index) {}

  [[nodiscard]] std::size_t insn_index() const noexcept { return insn_index_; }

 private:
  std::size_t insn_index_;
};

/// Install-time gate: throws VerifyError with the diagnostic on failure.
void verify_or_throw(const ExprProgram& prog);

}  // namespace evps
