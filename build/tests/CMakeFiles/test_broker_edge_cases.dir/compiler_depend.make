# Empty compiler generated dependencies file for test_broker_edge_cases.
# This may be replaced when dependencies are built.
