// Paged interval index over (bound, slot) entries — the sorted structure
// behind CountingMatcher's four per-attribute operator lists.
//
// Layout is a two-level B+-tree: leaf pages hold up to kPageCapacity entries
// as SoA arrays (bounds and slots in separate contiguous vectors, kept sorted
// by (bound, slot)), and a flat router stores each page's maximum key. An
// insert or erase binary-searches the router (O(log P)), then shifts within
// one small page — O(log n) search plus a constant-bounded memmove — instead
// of shifting the whole population like the flat sorted vectors it replaced.
// Page splits/removals shift the router, but the router is ~n/kPageCapacity
// entries and a split happens at most once per kPageCapacity/2 inserts, so
// the amortised cost stays sublinear all the way to millions of entries.
//
// The range scans match() needs (`all bounds < v`, `all bounds >= v`, ...)
// walk whole pages through the SoA slot arrays — contiguous, branch-free
// inner loops — and touch at most one partial page at the boundary.
//
// insert_batch() is the bulk path for VES version re-materialisation: the
// additions are sorted once and merged page-wise (untouched pages are moved,
// not copied), so a batch of m inserts into an n-entry index costs
// O(m log m + touched pages) rather than m binary-searched inserts.
//
// Ordering contract: keys are (bound, slot) lexicographic with doubles under
// IEEE `<`. NaN bounds are REJECTED (assert) — they have no total order and
// would corrupt any sorted structure; callers must quarantine NaN-constant
// predicates into their scan paths (they can never match anyway). -0.0 and
// 0.0 compare equal and are disambiguated by slot, which is safe because
// per-subscription predicate dedup guarantees one entry per equal-bound
// class per slot.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace evps {

class PagedBoundIndex {
 public:
  using Slot = std::uint32_t;

  struct Entry {
    double bound;
    Slot slot;
  };

  /// Entries per leaf page. 256 keeps a page's bound array at 2 KiB (half an
  /// L1 way) so the partial-page binary search and the shift on insert stay
  /// in cache.
  static constexpr std::size_t kPageCapacity = 256;

  /// Insert one entry. `bound` must not be NaN. Duplicate (bound, slot)
  /// pairs are allowed (multiset semantics); callers' predicate dedup makes
  /// them not occur in practice.
  void insert(double bound, Slot slot);

  /// Erase one entry matching (bound, slot); NaN-safe by precondition
  /// (NaN never enters). Returns false when no such entry exists.
  bool erase(double bound, Slot slot);

  /// Bulk-merge `entries` (any order, NaN-free). Equivalent to calling
  /// insert() per entry, but sorts the additions once and merges page-wise.
  void insert_batch(std::vector<Entry>&& entries);

  void clear() noexcept {
    pages_.clear();
    max_bound_.clear();
    max_slot_.clear();
    size_ = 0;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t page_count() const noexcept { return pages_.size(); }

  /// Visit the slot of every entry with bound < v (inclusive: bound <= v),
  /// in ascending (bound, slot) order. `v` must not be NaN.
  template <typename Fn>
  void visit_below(double v, bool inclusive, Fn&& fn) const {
    assert(!std::isnan(v));
    for (std::size_t p = 0; p < pages_.size(); ++p) {
      const Page& page = pages_[p];
      if (inclusive ? max_bound_[p] <= v : max_bound_[p] < v) {
        for (const Slot s : page.slots) fn(s);  // whole page: contiguous SoA walk
        continue;
      }
      // Boundary page: bounds are globally non-decreasing, so everything
      // after the first violating entry violates too — visit the prefix and
      // stop.
      const auto begin = page.bounds.begin();
      const auto end = inclusive ? std::upper_bound(begin, page.bounds.end(), v)
                                 : std::lower_bound(begin, page.bounds.end(), v);
      const auto n = static_cast<std::size_t>(end - begin);
      for (std::size_t i = 0; i < n; ++i) fn(page.slots[i]);
      return;
    }
  }

  /// Visit the slot of every entry with bound > v (inclusive: bound >= v),
  /// in ascending (bound, slot) order. `v` must not be NaN.
  template <typename Fn>
  void visit_above(double v, bool inclusive, Fn&& fn) const {
    assert(!std::isnan(v));
    // First page that can contain a qualifying entry: max bounds are
    // non-decreasing across pages, so binary search the router.
    const auto rb = max_bound_.begin();
    const auto re = max_bound_.end();
    std::size_t p = static_cast<std::size_t>(
        (inclusive ? std::lower_bound(rb, re, v) : std::upper_bound(rb, re, v)) - rb);
    if (p >= pages_.size()) return;
    {
      const Page& page = pages_[p];
      const auto begin = page.bounds.begin();
      const auto start = inclusive ? std::lower_bound(begin, page.bounds.end(), v)
                                   : std::upper_bound(begin, page.bounds.end(), v);
      const std::size_t n = page.bounds.size();
      for (auto i = static_cast<std::size_t>(start - begin); i < n; ++i) fn(page.slots[i]);
    }
    for (++p; p < pages_.size(); ++p) {
      for (const Slot s : pages_[p].slots) fn(s);
    }
  }

  /// Visit every entry in ascending order (tests/diagnostics).
  template <typename Fn>
  void visit_all(Fn&& fn) const {
    for (const Page& page : pages_) {
      for (std::size_t i = 0; i < page.bounds.size(); ++i) {
        fn(page.bounds[i], page.slots[i]);
      }
    }
  }

 private:
  struct Page {
    std::vector<double> bounds;  // sorted, parallel to slots
    std::vector<Slot> slots;
  };

  static bool key_less(double b1, Slot s1, double b2, Slot s2) noexcept {
    if (b1 != b2) return b1 < b2;
    return s1 < s2;
  }

  /// Page that owns key (bound, slot): the first page whose max key is >=
  /// the key, or the last page when the key is beyond every max.
  [[nodiscard]] std::size_t page_for(double bound, Slot slot) const noexcept;

  /// Position of the first entry in `page` with key >= (bound, slot).
  [[nodiscard]] static std::size_t lower_bound_in(const Page& page, double bound,
                                                  Slot slot) noexcept;

  void split_page(std::size_t p);
  void refresh_max(std::size_t p);

  std::vector<Page> pages_;
  // Router, SoA: max_bound_[p] / max_slot_[p] is the max key of pages_[p].
  std::vector<double> max_bound_;
  std::vector<Slot> max_slot_;
  std::size_t size_ = 0;
};

}  // namespace evps
