#include "realtime/realtime_host.hpp"

#include <future>

namespace evps {

RealTimeHost::RealTimeHost() : epoch_(Clock::now()), worker_([this] { worker_loop(); }) {}

RealTimeHost::~RealTimeHost() { stop(); }

SimTime RealTimeHost::now() const {
  const auto elapsed = Clock::now() - epoch_;
  return SimTime::from_micros(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
}

void RealTimeHost::schedule(Duration delay, std::function<void()> fn) {
  const auto when = clock_now() + std::chrono::microseconds(
                                      delay < Duration::zero() ? 0 : delay.count_micros());
  schedule_at(when, std::move(fn));
}

void RealTimeHost::schedule_at(Clock::time_point when, std::function<void()> fn) {
  {
    const std::scoped_lock lock(mutex_);
    if (stopping_) return;
    tasks_.push(Task{when, next_seq_++, std::move(fn)});
  }
  cv_.notify_one();
}

void RealTimeHost::invoke(std::function<void()> fn) {
  if (std::this_thread::get_id() == worker_.get_id()) {
    fn();  // already on the worker thread
    return;
  }
  std::promise<void> done;
  auto future = done.get_future();
  post([&fn, &done] {
    try {
      fn();
      done.set_value();
    } catch (...) {
      done.set_exception(std::current_exception());
    }
  });
  future.get();
}

void RealTimeHost::stop() {
  {
    const std::scoped_lock lock(mutex_);
    if (stopping_) {
      // Already stopped or stopping.
    }
    stopping_ = true;
  }
  cv_.notify_one();
  if (worker_.joinable()) worker_.join();
}

void RealTimeHost::worker_loop() {
  std::unique_lock lock(mutex_);
  while (!stopping_) {
    if (tasks_.empty()) {
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      continue;
    }
    const auto when = tasks_.top().when;
    if (when > Clock::now()) {
      cv_.wait_until(lock, when, [this, when] {
        return stopping_ || (!tasks_.empty() && tasks_.top().when < when);
      });
      continue;
    }
    auto task = std::move(const_cast<Task&>(tasks_.top()));
    tasks_.pop();
    lock.unlock();
    task.fn();
    lock.lock();
  }
}

}  // namespace evps
