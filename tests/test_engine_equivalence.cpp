// Cross-engine property tests: on randomized evolving workloads,
//   * LEES must agree exactly with direct (oracle) evaluation;
//   * CLEES with a negligible TT must agree exactly with LEES;
//   * VES must agree with the oracle away from version-staleness margins;
//   * CLEES with a real TT must agree with the oracle whenever the oracle
//     decision is stable across the whole cache window.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "evolving/clees_engine.hpp"
#include "evolving/lees_engine.hpp"
#include "evolving/ves_engine.hpp"
#include "test_util.hpp"

namespace evps {
namespace {

using testutil::SimHost;

SimTime sec(double s) { return SimTime::from_seconds(s); }

struct LinearSub {
  // x <= a + b*t + c*v
  double a, b, c;
  SubscriptionId id;

  [[nodiscard]] double bound(double t, double v) const { return a + b * t + c * v; }

  [[nodiscard]] SubscriptionPtr build() const {
    auto expr = Expr::add(
        Expr::add(Expr::constant(a), Expr::mul(Expr::constant(b), Expr::variable("t"))),
        Expr::mul(Expr::constant(c), Expr::variable("v")));
    Subscription sub;
    sub.add(Predicate{"x", RelOp::kLe, std::move(expr)});
    sub.set_id(id);
    sub.set_epoch(SimTime::zero());
    sub.set_mei(Duration::millis(10));
    sub.set_tt(Duration::micros(1));
    return std::make_shared<const Subscription>(std::move(sub));
  }
};

struct Workload {
  std::vector<LinearSub> subs;
  std::vector<std::pair<double, double>> var_changes;  // (time s, v value)
  std::vector<std::pair<double, double>> pubs;         // (time s, x value)
};

Workload make_workload(std::uint64_t seed, int n_subs, int n_pubs) {
  Rng rng{seed};
  Workload w;
  for (int i = 0; i < n_subs; ++i) {
    w.subs.push_back(LinearSub{rng.uniform(-10, 10), rng.uniform(-2, 2), rng.uniform(-3, 3),
                               SubscriptionId{static_cast<std::uint64_t>(i + 1)}});
  }
  double t = 0;
  for (int i = 0; i < 5; ++i) {
    t += rng.uniform(0.3, 2.0);
    w.var_changes.emplace_back(t, rng.uniform(0.0, 1.0));
  }
  t = 0.05;
  for (int i = 0; i < n_pubs; ++i) {
    t += rng.uniform(0.05, 0.4);
    w.pubs.emplace_back(t, rng.uniform(-15, 15));
  }
  return w;
}

/// Exact oracle: v value in effect at time `at`, initial 1.0.
double v_at(const Workload& w, double at) {
  double v = 1.0;
  for (const auto& [time, value] : w.var_changes) {
    if (time <= at) v = value;
  }
  return v;
}

struct Params {
  std::uint64_t seed;
  int subs;
  int pubs;
};

class EngineEquivalence : public ::testing::TestWithParam<Params> {};

TEST_P(EngineEquivalence, LeesMatchesOracleExactly) {
  const auto [seed, n_subs, n_pubs] = GetParam();
  const Workload w = make_workload(seed, n_subs, n_pubs);

  Simulator sim;
  SimHost host{sim};
  host.set_variable("v", 1.0);
  EngineConfig cfg{.kind = EngineKind::kLees};
  LeesEngine engine{cfg};
  for (const auto& s : w.subs) {
    engine.add(s.build(), NodeId{s.id.value()}, host);  // unique dest per sub
  }
  for (const auto& [time, value] : w.var_changes) {
    sim.at(sec(time), [&host, value = value] { host.set_variable("v", value); });
  }
  for (const auto& [time, x] : w.pubs) {
    sim.at(sec(time), [&, time = time, x = x] {
      std::vector<NodeId> dests;
      engine.match(Publication{{"x", Value{x}}}, nullptr, host, dests);
      std::vector<NodeId> expected;
      const double v = v_at(w, time);
      for (const auto& s : w.subs) {
        if (x <= s.bound(time, v)) expected.push_back(NodeId{s.id.value()});
      }
      std::sort(expected.begin(), expected.end());
      ASSERT_EQ(dests, expected) << "t=" << time << " x=" << x;
    });
  }
  sim.run_all();
}

TEST_P(EngineEquivalence, CleesWithTinyTtMatchesOracleExactly) {
  const auto [seed, n_subs, n_pubs] = GetParam();
  const Workload w = make_workload(seed, n_subs, n_pubs);

  Simulator sim;
  SimHost host{sim};
  host.set_variable("v", 1.0);
  EngineConfig cfg{.kind = EngineKind::kClees};
  CleesEngine engine{cfg};
  for (const auto& s : w.subs) engine.add(s.build(), NodeId{s.id.value()}, host);
  for (const auto& [time, value] : w.var_changes) {
    sim.at(sec(time), [&host, value = value] { host.set_variable("v", value); });
  }
  for (const auto& [time, x] : w.pubs) {
    sim.at(sec(time), [&, time = time, x = x] {
      std::vector<NodeId> dests;
      engine.match(Publication{{"x", Value{x}}, {"probe", Value{1}}}, nullptr, host, dests);
      std::vector<NodeId> expected;
      const double v = v_at(w, time);
      for (const auto& s : w.subs) {
        if (x <= s.bound(time, v)) expected.push_back(NodeId{s.id.value()});
      }
      std::sort(expected.begin(), expected.end());
      ASSERT_EQ(dests, expected) << "t=" << time << " x=" << x;
    });
  }
  sim.run_all();
}

TEST_P(EngineEquivalence, VesMatchesOracleAwayFromStalenessMargin) {
  const auto [seed, n_subs, n_pubs] = GetParam();
  const Workload w = make_workload(seed, n_subs, n_pubs);
  const double mei_s = 0.010;

  Simulator sim;
  SimHost host{sim};
  host.set_variable("v", 1.0);
  EngineConfig cfg{.kind = EngineKind::kVes};
  VesEngine engine{cfg};
  for (const auto& s : w.subs) engine.add(s.build(), NodeId{s.id.value()}, host);
  for (const auto& [time, value] : w.var_changes) {
    sim.at(sec(time), [&host, value = value] { host.set_variable("v", value); });
  }
  std::uint64_t checked = 0;
  for (const auto& [time, x] : w.pubs) {
    sim.at(sec(time), [&, time = time, x = x] {
      std::vector<NodeId> dests;
      engine.match(Publication{{"x", Value{x}}}, nullptr, host, dests);
      const double v = v_at(w, time);
      for (const auto& s : w.subs) {
        // Versions may lag by up to one MEI (plus a var change within the
        // window); skip publications whose decision could flip within it.
        const double margin =
            std::abs(s.b) * mei_s * 2 + std::abs(s.c) * 1.0 + 1e-9;
        const double dist = std::abs(x - s.bound(time, v));
        bool var_changed_recently = false;
        for (const auto& [ct, cv] : w.var_changes) {
          if (ct <= time && ct > time - 2 * mei_s) var_changed_recently = true;
        }
        if (var_changed_recently) continue;
        // Only the b-term drifts between evolutions once v is stable.
        if (dist <= std::abs(s.b) * mei_s * 2 + 1e-9) continue;
        (void)margin;
        const bool expected = x <= s.bound(time, v);
        const bool actual =
            std::find(dests.begin(), dests.end(), NodeId{s.id.value()}) != dests.end();
        ASSERT_EQ(actual, expected)
            << "t=" << time << " x=" << x << " bound=" << s.bound(time, v);
        ++checked;
      }
    });
  }
  // VES perpetually re-arms its evolution timer, so the event queue never
  // drains: bound the run at the last publication instead of draining.
  sim.run_until(sec(w.pubs.back().first + 0.001));
  EXPECT_GT(checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, EngineEquivalence,
                         ::testing::Values(Params{11, 10, 60}, Params{12, 25, 60},
                                           Params{13, 50, 40}, Params{14, 5, 120},
                                           Params{15, 40, 80}, Params{16, 1, 200}));

// The engines evaluate install-time *compiled* programs; this oracle
// re-evaluates the same predicates by walking the expression tree through
// the string-keyed Env interface. Nonlinear operands (min/max/abs/sqrt/
// trig/pow and a sometimes-unbound variable) force every program opcode and
// the unbound-variable fail-closed path through both pipelines.
class CompiledVsTreeOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompiledVsTreeOracle, LeesAndCleesAgreeWithTreeWalk) {
  const std::uint64_t seed = GetParam();
  Rng rng{seed};

  Simulator sim;
  SimHost host{sim};
  host.set_variable("v", rng.uniform(0.0, 1.0));
  if (rng.bernoulli(0.5)) host.set_variable("w", rng.uniform(-2.0, 2.0));
  // `u` stays unbound for the whole run: subscriptions referencing it can
  // never match, in both the compiled engines and the tree-walking oracle.

  const char* const shapes[] = {
      "x <= max(v, 0.2) * 10 + t",
      "x >= min(3 * v, w) - abs(w)",
      "x <= sqrt(abs(w) + 1) * 5; y >= sin(t) + cos(v)",
      "x <= clamp(2 * v, 0, 1) * 20",
      "x >= step(w) * 8 + v ^ 2",
      "x <= floor(10 * v) + ceil(t / 2)",
      "x <= u * 2 + v",
      "x != (v - v) / (v - v)",  // 0/0 -> NaN operand: kNe matches
  };
  std::vector<SubscriptionPtr> subs;
  const int n = 40;
  for (int i = 1; i <= n; ++i) {
    // Negligible TT: every CLEES probe re-materialises, so the cache cannot
    // mask a compiled-vs-tree divergence behind legitimate staleness.
    subs.push_back(testutil::make_sub(
        static_cast<std::uint64_t>(i),
        std::string("[tt=0.0000001] ") + shapes[rng.uniform_int(0, 7)]));
  }

  EngineConfig lees_cfg{.kind = EngineKind::kLees};
  EngineConfig clees_cfg{.kind = EngineKind::kClees, .default_tt = Duration::micros(1)};
  LeesEngine lees{lees_cfg};
  CleesEngine clees{clees_cfg};
  for (const auto& sub : subs) {
    const NodeId dest{sub->id().value()};
    lees.add(sub, dest, host);
    clees.add(sub, dest, host);
  }

  for (int round = 0; round < 30; ++round) {
    sim.run_until(sim.now() + Duration::millis(100));
    if (rng.bernoulli(0.3)) host.set_variable("v", rng.uniform(0.0, 1.0));
    if (rng.bernoulli(0.2)) host.set_variable("w", rng.uniform(-2.0, 2.0));
    Publication pub{{"x", Value{rng.uniform(-15.0, 25.0)}},
                    {"y", Value{rng.uniform(-2.0, 2.0)}}};
    pub.set_entry_time(sim.now());

    std::vector<NodeId> expected;
    for (const auto& sub : subs) {
      const EvalScope scope = sub->scope(&host.variables(), sim.now());
      bool all = true;
      for (const auto& p : sub->predicates()) {
        const Value* value = pub.get(p.attribute());
        if (value == nullptr || !p.matches(*value, scope)) {
          all = false;
          break;
        }
      }
      if (all) expected.push_back(NodeId{sub->id().value()});
    }
    std::sort(expected.begin(), expected.end());

    std::vector<NodeId> lees_dests;
    lees.match(pub, nullptr, host, lees_dests);
    ASSERT_EQ(lees_dests, expected) << "seed " << seed << " round " << round;

    std::vector<NodeId> clees_dests;
    clees.match(pub, nullptr, host, clees_dests);
    ASSERT_EQ(clees_dests, expected) << "seed " << seed << " round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledVsTreeOracle,
                         ::testing::Values(101, 102, 103, 104, 105, 106, 107, 108));

}  // namespace
}  // namespace evps
