#include "metrics/traffic.hpp"

#include <gtest/gtest.h>

#include "message/codec.hpp"

namespace evps {
namespace {

SimTime sec(double s) { return SimTime::from_seconds(s); }

struct TrafficTest : ::testing::Test {
  Simulator sim;
  Overlay overlay{sim};
  Broker* b0 = nullptr;
  Broker* b1 = nullptr;
  PubSubClient* client = nullptr;

  void SetUp() override {
    BrokerConfig cfg;
    cfg.engine.kind = EngineKind::kLees;
    b0 = &overlay.add_broker("b0", cfg);
    b1 = &overlay.add_broker("b1", cfg);
    overlay.connect(*b0, *b1, Duration::millis(1));
    client = &overlay.add_client("c");
    client->connect(*b0, Duration::millis(1));
  }
};

TEST_F(TrafficTest, CountsSubscriptionMessagesPerIntervalPerBroker) {
  TrafficProbe probe{overlay, Duration::seconds(10), sec(30)};
  // One resubscription (unsub+sub) per second for the first 10 seconds.
  SubscriptionId current = client->subscribe("x > 0");
  sim.every(sec(1), Duration::seconds(1), sec(10), [&](SimTime) {
    current = client->resubscribe(current, parse_subscription("x > 0"));
  });
  sim.run_until(sec(30));

  const auto& samples = probe.per_interval_per_broker();
  ASSERT_EQ(samples.size(), 3u);
  // Interval 1: 1 initial sub + 9 resubs (the 10s tick lands in interval 2)
  // each touching 2 brokers -> (2 + 9*2*2)/2 per broker.
  EXPECT_NEAR(samples[0], (2.0 + 9 * 4.0) / 2.0, 2.0);
  EXPECT_NEAR(samples[1], 2.0, 2.0);  // the boundary resub
  EXPECT_NEAR(samples[2], 0.0, 0.01);
  EXPECT_GT(probe.mean(), 0.0);
}

TEST_F(TrafficTest, NoTrafficMeansZeroSamples) {
  TrafficProbe probe{overlay, Duration::seconds(5), sec(10)};
  sim.run_until(sec(10));
  ASSERT_EQ(probe.per_interval_per_broker().size(), 2u);
  EXPECT_EQ(probe.per_interval_per_broker()[0], 0.0);
  EXPECT_EQ(probe.mean(), 0.0);
}

TEST_F(TrafficTest, RejectsNonPositiveInterval) {
  EXPECT_THROW(TrafficProbe(overlay, Duration::zero(), sec(1)), std::invalid_argument);
}

TEST_F(TrafficTest, PublicationsNotCounted) {
  PubSubClient& feed = overlay.add_client("feed");
  feed.connect(*b1, Duration::millis(1));
  TrafficProbe probe{overlay, Duration::seconds(5), sec(5)};
  client->subscribe("x > 0");
  sim.every(sec(1), Duration::seconds(1), sec(5), [&](SimTime) { feed.publish("x = 1"); });
  sim.run_until(sec(5));
  ASSERT_EQ(probe.per_interval_per_broker().size(), 1u);
  EXPECT_DOUBLE_EQ(probe.per_interval_per_broker()[0], 1.0);  // 2 sub msgs / 2 brokers
}

}  // namespace
}  // namespace evps
