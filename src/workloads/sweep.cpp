#include "workloads/sweep.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "message/codec.hpp"
#include "metrics/accuracy.hpp"
#include "stats/quantile_sketch.hpp"

namespace evps {

namespace {

/// FNV-1a 64-bit over a byte string.
void fnv1a(std::uint64_t& h, std::string_view bytes) noexcept {
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
}
constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;

[[nodiscard]] std::size_t scaled(std::size_t base, double scale) {
  const double v = std::llround(static_cast<double>(base) * scale);
  return static_cast<std::size_t>(std::max(1.0, v));
}

/// Everything read out of one finished overlay before it is destroyed.
struct RunExtract {
  DeliveryLog log;
  QuantileSketch latency;
  OnlineStats latency_stats;
  std::uint64_t fingerprint = kFnvOffset;
  std::uint64_t overlay_msgs = 0;
  std::uint64_t subscription_msgs = 0;

  explicit RunExtract(double eps) : latency(eps) {}
};

RunExtract extract_run(Overlay& overlay, double eps) {
  RunExtract out{eps};
  out.log = collect_delivery_log(overlay);
  out.overlay_msgs = overlay.network().messages_sent();
  out.subscription_msgs = overlay.total_subscription_msgs();
  for (const auto& client : overlay.clients()) {
    for (const auto& d : client->deliveries()) {
      const double latency = (d.when - d.pub.entry_time()).count_seconds();
      out.latency.add(latency);
      out.latency_stats.add(latency);
      fnv1a(out.fingerprint, client->name());
      fnv1a(out.fingerprint, "@");
      fnv1a(out.fingerprint, std::to_string(d.when.micros()));
      fnv1a(out.fingerprint, ":");
      fnv1a(out.fingerprint, serialize(d.pub));
    }
  }
  return out;
}

ReplicaMetrics reduce(std::uint64_t seed, const RunExtract& actual, const DeliveryLog& truth) {
  ReplicaMetrics m;
  m.seed = seed;
  const AccuracyResult acc = compare_logs(truth, actual.log);
  m.deliveries = acc.actual_deliveries;
  m.truth_deliveries = acc.truth_deliveries;
  m.false_positives = acc.false_positives;
  m.false_negatives = acc.false_negatives;
  m.accuracy = acc.accuracy();
  m.latency_mean = actual.latency_stats.mean();
  m.latency_max = actual.latency_stats.max();
  m.latency_samples = actual.latency_stats.count();
  m.latency_rejected = actual.latency_stats.rejected();
  m.latency_p50 = actual.latency.quantile(0.50);
  m.latency_p90 = actual.latency.quantile(0.90);
  m.latency_p99 = actual.latency.quantile(0.99);
  m.overlay_msgs = actual.overlay_msgs;
  m.subscription_msgs = actual.subscription_msgs;
  m.msgs_per_delivery =
      m.deliveries == 0 ? 0.0
                        : static_cast<double>(m.overlay_msgs) / static_cast<double>(m.deliveries);
  m.fingerprint = actual.fingerprint;
  return m;
}

// --- game ------------------------------------------------------------------

GameConfig game_profile(const SweepOptions& o, std::uint64_t seed) {
  GameConfig cfg;
  cfg.system = o.system;
  cfg.seed = seed;
  cfg.matcher = o.matcher;
  cfg.matcher_threads = o.matcher_threads;
  cfg.batch_size = o.batch_size;
  cfg.link_batch_size = o.link_batch_size;
  // Scaled-down profile: hundreds of replicas must fit in minutes on one
  // core, and capacity planning needs replica *count*, not replica size.
  cfg.characters = scaled(48, o.scale);
  cfg.clients = scaled(12, o.scale);
  cfg.pub_rate = 40.0;
  cfg.move_epoch = Duration::seconds(4.0);
  cfg.duration = SimTime::from_seconds(20.0);
  return cfg;
}

ReplicaMetrics run_game_replica(const SweepOptions& o, std::uint64_t seed) {
  GameConfig cfg = game_profile(o, seed);
  GameExperiment actual(cfg);
  actual.run();
  const RunExtract ex = extract_run(actual.overlay(), o.latency_eps);

  GameConfig truth_cfg = cfg;
  truth_cfg.system = SystemKind::kGroundTruth;
  truth_cfg.matcher_threads = 0;
  truth_cfg.batch_size = 1;
  truth_cfg.link_batch_size = 1;
  GameExperiment truth(truth_cfg);
  truth.run();
  return reduce(seed, ex, truth.delivery_log());
}

// --- hft -------------------------------------------------------------------

HftConfig hft_profile(const SweepOptions& o, std::uint64_t seed) {
  HftConfig cfg;
  cfg.system = o.system;
  cfg.seed = seed;
  cfg.routing = o.routing;
  cfg.matcher_threads = o.matcher_threads;
  cfg.batch_size = o.batch_size;
  cfg.link_batch_size = o.link_batch_size;
  cfg.clients = scaled(12, o.scale);
  cfg.stocks = scaled(40, o.scale);
  cfg.stocks_per_client = 4;
  cfg.pub_rate = 8.0;
  cfg.validity = Duration::seconds(10.0);
  cfg.duration = SimTime::from_seconds(30.0);
  cfg.traffic_interval = Duration::seconds(10.0);
  return cfg;
}

ReplicaMetrics run_hft_replica(const SweepOptions& o, std::uint64_t seed) {
  HftConfig cfg = hft_profile(o, seed);
  HftExperiment actual(cfg);
  actual.run();
  const RunExtract ex = extract_run(actual.overlay(), o.latency_eps);

  HftConfig truth_cfg = cfg;
  truth_cfg.system = SystemKind::kGroundTruth;
  truth_cfg.matcher_threads = 0;
  truth_cfg.batch_size = 1;
  truth_cfg.link_batch_size = 1;
  HftExperiment truth(truth_cfg);
  truth.run();
  return reduce(seed, ex, truth.delivery_log());
}

// --- game_rotated ----------------------------------------------------------
//
// Rotated-coordinate moving zones (DESIGN.md §16, examples/scenarios/
// game_rotated.evps): interest zones in u = x + y, w = x - y coordinates
// around per-cluster moving centres (cu_k, cw_k). Exercises advertisement
// routing plus the covering/relational stack under evolving variables — the
// sweep dimension the plain game scenario (one broker) cannot reach. All
// directives (subscriptions, centre updates, publications) are generated
// once from the replica seed, then replayed into both the distributed star
// overlay and a centralised zero-latency twin; accuracy measures what the
// propagation delay of centre updates costs.

struct RotatedWorkload {
  struct Var {
    std::string name;
    double lo, hi, value;
  };
  struct Update {
    double t;
    std::string name;
    double value;
  };
  std::vector<Var> vars;
  std::string adv = "u >= 0; u <= 2000; w >= -1000; w <= 1000";
  std::vector<std::string> subs;
  std::vector<Update> updates;
  std::vector<std::pair<double, std::string>> pubs;  // (time, publication text)
};

std::string fmt_num(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

std::string shifted(const std::string& var, double d) {
  return d < 0 ? var + " - " + fmt_num(-d) : var + " + " + fmt_num(d);
}

RotatedWorkload make_rotated(std::uint64_t seed, double scale) {
  RotatedWorkload w;
  Rng rng{seed};
  const std::size_t clusters = scaled(3, scale);
  constexpr int kZonesPerCluster = 4;
  constexpr double kDuration = 16.0;

  std::vector<double> cu(clusters), cw(clusters);
  for (std::size_t k = 0; k < clusters; ++k) {
    const std::string su = "cu" + std::to_string(k);
    const std::string sw = "cw" + std::to_string(k);
    cu[k] = rng.uniform(200.0, 800.0);
    cw[k] = rng.uniform(-400.0, 400.0);
    w.vars.push_back({su, 100.0, 900.0, cu[k]});
    w.vars.push_back({sw, -500.0, 500.0, cw[k]});

    // Wide coverer first; narrower zones around the same centre, some
    // provably inside it (relational covering), some poking out.
    w.subs.push_back("[tt=0.5] u >= " + shifted(su, -60) + "; u <= " + shifted(su, 60) +
                     "; w >= " + shifted(sw, -60) + "; w <= " + shifted(sw, 60));
    for (int z = 1; z < kZonesPerCluster; ++z) {
      const double r = rng.uniform(10.0, 50.0);
      const double ou = rng.uniform(-20.0, 20.0);
      const double ow = rng.uniform(-20.0, 20.0);
      w.subs.push_back("[tt=0.5] u >= " + shifted(su, ou - r) + "; u <= " + shifted(su, ou + r) +
                       "; w >= " + shifted(sw, ow - r) + "; w <= " + shifted(sw, ow + r));
    }
  }

  // Centres drift every 2 s: a clamped random walk inside the declared range.
  for (double t = 6.0; t < kDuration; t += 2.0) {
    for (std::size_t k = 0; k < clusters; ++k) {
      cu[k] = std::clamp(cu[k] + rng.uniform(-40.0, 40.0), 100.0, 900.0);
      cw[k] = std::clamp(cw[k] + rng.uniform(-40.0, 40.0), -500.0, 500.0);
      w.updates.push_back({t, "cu" + std::to_string(k), cu[k]});
      w.updates.push_back({t, "cw" + std::to_string(k), cw[k]});
    }
  }

  // Publication feed: mostly hotspot events near a cluster's current centre,
  // the rest uniform background over the advertised space.
  for (double t = 4.0; t < kDuration; t += 0.1) {
    double u = 0, v = 0;
    if (rng.bernoulli(0.7)) {
      const auto k = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(clusters) - 1));
      u = cu[k] + rng.uniform(-70.0, 70.0);
      v = cw[k] + rng.uniform(-70.0, 70.0);
    } else {
      u = rng.uniform(0.0, 2000.0);
      v = rng.uniform(-1000.0, 1000.0);
    }
    w.pubs.emplace_back(t, "u = " + fmt_num(u) + "; w = " + fmt_num(v));
  }
  return w;
}

RunExtract run_rotated_overlay(const RotatedWorkload& w, const SweepOptions& o, bool truth) {
  Simulator sim;
  Overlay overlay{sim};

  BrokerConfig cfg;
  cfg.engine.kind = EngineKind::kLees;
  cfg.engine.matcher = o.matcher;
  cfg.engine.matcher_threads = truth ? 0 : o.matcher_threads;
  cfg.routing = RoutingMode::kAdvertisement;
  cfg.covering = !truth;
  cfg.relational_covering = !truth;
  cfg.batch_size = truth ? 1 : o.batch_size;
  cfg.link_batch_size = truth ? 1 : o.link_batch_size;

  constexpr std::size_t kEdges = 3;
  std::vector<Broker*> brokers;
  if (truth) {
    brokers.push_back(&overlay.add_broker("central", cfg));
  } else {
    brokers = overlay.build_star(kEdges, cfg, Duration::millis(5));
  }
  for (Broker* b : brokers) {
    for (const auto& v : w.vars) b->variables().declare_range(v.name, v.lo, v.hi);
  }
  for (const auto& v : w.vars) brokers[0]->set_variable(v.name, v.value);

  // Client creation order is identical in both overlays so ClientIds — and
  // therefore publication MessageIds — line up for the accuracy comparison.
  const Duration client_link = truth ? Duration::zero() : Duration::millis(2);
  std::vector<PubSubClient*> subscribers;
  for (std::size_t i = 0; i < w.subs.size(); ++i) {
    PubSubClient& c = overlay.add_client("zone" + std::to_string(i));
    Broker& attach = truth ? *brokers[0] : *brokers[1 + i % kEdges];
    c.connect(attach, client_link);
    subscribers.push_back(&c);
  }
  PubSubClient& publisher = overlay.add_client("events");
  publisher.connect(truth ? *brokers[0] : *brokers[1], client_link);

  sim.after(Duration::zero(), [&] { publisher.advertise(parse_subscription(w.adv).predicates()); });
  for (std::size_t i = 0; i < w.subs.size(); ++i) {
    sim.after(Duration::seconds(1.0 + 0.01 * static_cast<double>(i)),
              [&, i] { subscribers[i]->subscribe(w.subs[i]); });
  }
  for (const auto& u : w.updates) {
    sim.at(SimTime::from_seconds(u.t), [&] { brokers[0]->set_variable(u.name, u.value); });
  }
  for (const auto& [t, text] : w.pubs) {
    sim.at(SimTime::from_seconds(t), [&, &text = text] { publisher.publish(text); });
  }
  sim.run_until(SimTime::from_seconds(20.0));
  return extract_run(overlay, o.latency_eps);
}

ReplicaMetrics run_rotated_replica(const SweepOptions& o, std::uint64_t seed) {
  const RotatedWorkload w = make_rotated(seed, o.scale);
  const RunExtract actual = run_rotated_overlay(w, o, /*truth=*/false);
  const RunExtract truth = run_rotated_overlay(w, o, /*truth=*/true);
  return reduce(seed, actual, truth.log);
}

}  // namespace

std::uint64_t derive_replica_seed(std::uint64_t root, std::size_t index) noexcept {
  // Affine stream through splitmix64's bijective finalizer: distinct indexes
  // give distinct pre-mix states, hence distinct seeds.
  std::uint64_t state = root + (static_cast<std::uint64_t>(index) + 1) * 0x9e3779b97f4a7c15ULL;
  return splitmix64(state);
}

std::optional<SweepScenario> parse_sweep_scenario(std::string_view name) noexcept {
  if (name == "game") return SweepScenario::kGame;
  if (name == "hft") return SweepScenario::kHft;
  if (name == "game_rotated" || name == "rotated") return SweepScenario::kGameRotated;
  return std::nullopt;
}

ReplicaMetrics run_replica(const SweepOptions& options, std::uint64_t seed) {
  switch (options.scenario) {
    case SweepScenario::kGame: return run_game_replica(options, seed);
    case SweepScenario::kHft: return run_hft_replica(options, seed);
    case SweepScenario::kGameRotated: return run_rotated_replica(options, seed);
  }
  throw std::invalid_argument("unknown sweep scenario");
}

MetricSummary summarize_metric(std::span<const double> values) {
  MetricSummary s;
  std::vector<double> finite;
  finite.reserve(values.size());
  for (const double v : values) {
    s.stats.add(v);
    if (std::isfinite(v)) finite.push_back(v);
  }
  s.ci = batch_means_ci(values);
  if (finite.empty()) return s;
  std::sort(finite.begin(), finite.end());
  const auto nearest_rank = [&](double q) {
    const double r = std::ceil(q * static_cast<double>(finite.size()));
    const auto idx = static_cast<std::size_t>(std::max(1.0, r)) - 1;
    return finite[std::min(idx, finite.size() - 1)];
  };
  s.p50 = nearest_rank(0.50);
  s.p90 = nearest_rank(0.90);
  s.p99 = nearest_rank(0.99);
  return s;
}

SweepResult run_sweep(const SweepOptions& options) {
  if (options.replicas == 0) throw std::invalid_argument("run_sweep: replicas must be >= 1");
  SweepOptions opts = options;
  // Pin the effective link batch so results never depend on EVPS_LINK_BATCH.
  if (opts.link_batch_size == 0) opts.link_batch_size = 1;

  SweepResult result;
  result.options = opts;
  result.replicas.resize(opts.replicas);

  // Replica 0 runs inline first: it interns the scenario's complete
  // attribute/variable universe into the process-wide tables in a fixed
  // order, so concurrent workers can never race table growth into a
  // schedule-dependent id assignment.
  result.replicas[0] = run_replica(opts, derive_replica_seed(opts.root_seed, 0));
  if (opts.replicas > 1) {
    auto body = [&](std::size_t i) {
      result.replicas[i + 1] = run_replica(opts, derive_replica_seed(opts.root_seed, i + 1));
    };
    if (opts.workers <= 1) {
      for (std::size_t i = 0; i + 1 < opts.replicas; ++i) body(i);
    } else {
      ThreadPool pool(opts.workers - 1);
      pool.run_indexed(opts.replicas - 1, body);
    }
  }

  // Sequential fold in replica-index order: bit-identical aggregates for any
  // worker count (see OnlineStats::combine's rounding note).
  const auto column = [&](auto getter) {
    std::vector<double> v;
    v.reserve(result.replicas.size());
    for (const ReplicaMetrics& m : result.replicas) v.push_back(getter(m));
    return summarize_metric(v);
  };
  result.latency_mean = column([](const ReplicaMetrics& m) { return m.latency_mean; });
  result.latency_p99 = column([](const ReplicaMetrics& m) { return m.latency_p99; });
  result.accuracy = column([](const ReplicaMetrics& m) { return m.accuracy; });
  result.deliveries =
      column([](const ReplicaMetrics& m) { return static_cast<double>(m.deliveries); });
  result.overlay_msgs =
      column([](const ReplicaMetrics& m) { return static_cast<double>(m.overlay_msgs); });
  result.msgs_per_delivery = column([](const ReplicaMetrics& m) { return m.msgs_per_delivery; });
  result.subscription_msgs =
      column([](const ReplicaMetrics& m) { return static_cast<double>(m.subscription_msgs); });
  return result;
}

}  // namespace evps
