// Evolving Subscription Queue (ESQ) — Section V-A.
//
// Subscriptions are "automatically ordered by the time remaining until they
// are scheduled to evolve again, as indicated by their minimal evolution
// interval (MEI)". Implemented as a binary heap with lazy invalidation: each
// id has at most one live entry; re-pushing or removing an id invalidates
// the stale heap entry, which is skipped when popped.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/sim_time.hpp"

namespace evps {

class EvolvingSubscriptionQueue {
 public:
  /// Schedule (or reschedule) `id` to evolve at `due`.
  void push(SubscriptionId id, SimTime due);

  /// Cancel the scheduled evolution of `id`; returns false if not queued.
  bool remove(SubscriptionId id);

  [[nodiscard]] bool contains(SubscriptionId id) const noexcept { return live_.contains(id); }

  /// Number of live entries.
  [[nodiscard]] std::size_t size() const noexcept { return live_.size(); }
  [[nodiscard]] bool empty() const noexcept { return live_.empty(); }

  /// Earliest live due time, if any.
  [[nodiscard]] std::optional<SimTime> next_due() const;

  /// Pop every entry with due time <= now, appending ids in due order.
  void pop_due(SimTime now, std::vector<SubscriptionId>& out);

 private:
  struct Entry {
    SimTime due;
    std::uint64_t generation;
    SubscriptionId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.due != b.due) return a.due > b.due;
      return a.generation > b.generation;
    }
  };

  void drop_stale() const;

  // `heap_`/`live_` are mutable so that next_due() can prune lazily.
  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_map<SubscriptionId, std::uint64_t> live_;  // id -> live generation
  std::uint64_t next_generation_ = 1;
};

}  // namespace evps
