// End-to-end delivery latency: time from a publication's entry into the
// system (entry-point broker) until each client delivery. Complements the
// accuracy metric — the baselines' inaccuracy in Figure 7 is caused by
// exactly this propagation delay.
#pragma once

#include <map>

#include "broker/overlay.hpp"
#include "sim/stats.hpp"

namespace evps {

/// Latency summary over every delivery recorded by the overlay's clients.
[[nodiscard]] Summary collect_delivery_latency(const Overlay& overlay);

/// Per-client latency summaries (clients without deliveries are omitted).
[[nodiscard]] std::map<ClientId, Summary> collect_delivery_latency_per_client(
    const Overlay& overlay);

}  // namespace evps
