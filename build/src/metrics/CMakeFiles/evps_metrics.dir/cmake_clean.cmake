file(REMOVE_RECURSE
  "CMakeFiles/evps_metrics.dir/accuracy.cpp.o"
  "CMakeFiles/evps_metrics.dir/accuracy.cpp.o.d"
  "CMakeFiles/evps_metrics.dir/latency.cpp.o"
  "CMakeFiles/evps_metrics.dir/latency.cpp.o.d"
  "CMakeFiles/evps_metrics.dir/report.cpp.o"
  "CMakeFiles/evps_metrics.dir/report.cpp.o.d"
  "CMakeFiles/evps_metrics.dir/traffic.cpp.o"
  "CMakeFiles/evps_metrics.dir/traffic.cpp.o.d"
  "libevps_metrics.a"
  "libevps_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evps_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
