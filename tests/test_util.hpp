// Shared test helpers.
#pragma once

#include <memory>

#include "evolving/engine.hpp"
#include "expr/parser.hpp"
#include "message/codec.hpp"
#include "sim/simulator.hpp"

namespace evps::testutil {

/// EngineHost backed by a simulator, for driving engines without a broker.
class SimHost final : public EngineHost {
 public:
  explicit SimHost(Simulator& sim) : sim_(sim) {}

  [[nodiscard]] SimTime now() const override { return sim_.now(); }
  void schedule(Duration delay, std::function<void()> fn) override {
    sim_.after(delay, std::move(fn));
  }
  [[nodiscard]] VariableRegistry& variables() override { return registry_; }

  void set_variable(const std::string& name, double value) {
    registry_.set(name, value, sim_.now());
  }

 private:
  Simulator& sim_;
  VariableRegistry registry_;
};

/// Build a subscription from codec text with an explicit id; the destination
/// is chosen by the caller at add() time.
inline SubscriptionPtr make_sub(std::uint64_t id, std::string_view text,
                                SimTime epoch = SimTime::zero()) {
  Subscription sub = parse_subscription(text);
  sub.set_id(SubscriptionId{id});
  sub.set_subscriber(ClientId{id});
  sub.set_epoch(epoch);
  return std::make_shared<const Subscription>(std::move(sub));
}

inline std::vector<NodeId> match(BrokerEngine& engine, EngineHost& host,
                                 const Publication& pub,
                                 const VariableSnapshot* snapshot = nullptr) {
  std::vector<NodeId> dests;
  engine.match(pub, snapshot, host, dests);
  return dests;
}

}  // namespace evps::testutil
