// Figure 10 (a)-(b): maximum sustained publication throughput of the lazy
// engines.
//
//   (a) throughput vs number of evolving subscriptions (fixed 100 clients)
//   (b) throughput vs number of clients at a constant 1000 subscriptions —
//       the subscription-to-client ratio effect: LEES benefits from dense
//       per-client subscriptions because lazy evaluation early-exits per
//       client, while many sparse clients force exhaustive evaluation.
//       CLEES is less sensitive since cache hits replace evaluations.
//
// Engines are driven directly (no network) and timed with the wall clock.
#include <chrono>
#include <iostream>

#include "common/rng.hpp"
#include "evolving/engine.hpp"
#include "metrics/report.hpp"
#include "workloads/system_kind.hpp"

namespace {

using namespace evps;

/// Minimal stand-alone host with a manually advanced clock.
class BenchHost final : public EngineHost {
 public:
  [[nodiscard]] SimTime now() const override { return now_; }
  void schedule(Duration delay, std::function<void()> fn) override {
    timers_.emplace_back(now_ + delay, std::move(fn));
  }
  [[nodiscard]] VariableRegistry& variables() override { return registry_; }

  void advance_to(SimTime t) {
    now_ = t;
    // Fire due timers (VES evolution wakeups) in scheduling order.
    for (std::size_t i = 0; i < timers_.size(); ++i) {
      if (timers_[i].first <= now_) {
        auto fn = std::move(timers_[i].second);
        timers_.erase(timers_.begin() + static_cast<std::ptrdiff_t>(i));
        --i;
        fn();
      }
    }
  }

 private:
  SimTime now_ = SimTime::zero();
  VariableRegistry registry_;
  std::vector<std::pair<SimTime, std::function<void()>>> timers_;
};

SubscriptionPtr aoi_subscription(std::uint64_t id, Rng& rng, double world) {
  const double x = rng.uniform(-world, world);
  const double y = rng.uniform(-world, world);
  const double dx = rng.uniform(-2, 2);
  const double dy = rng.uniform(-2, 2);
  const auto moving = [](double origin, double velocity) {
    return Expr::add(Expr::constant(origin),
                     Expr::mul(Expr::constant(velocity), Expr::variable("t")));
  };
  Subscription sub;
  sub.add(Predicate{"x", RelOp::kGe, Expr::sub(moving(x, dx), Expr::constant(3.0))});
  sub.add(Predicate{"x", RelOp::kLe, Expr::add(moving(x, dx), Expr::constant(3.0))});
  sub.add(Predicate{"y", RelOp::kGe, Expr::sub(moving(y, dy), Expr::constant(2.0))});
  sub.add(Predicate{"y", RelOp::kLe, Expr::add(moving(y, dy), Expr::constant(2.0))});
  sub.set_id(SubscriptionId{id});
  sub.set_epoch(SimTime::zero());
  sub.set_mei(Duration::seconds(1.0));
  sub.set_tt(Duration::seconds(1.0));
  return std::make_shared<const Subscription>(std::move(sub));
}

/// Measured pubs/s for `kind` with n_subs spread over n_clients.
double throughput(EngineKind kind, std::size_t n_subs, std::size_t n_clients,
                  std::size_t n_pubs) {
  constexpr double kWorld = 100.0;
  BenchHost host;
  EngineConfig cfg;
  cfg.kind = kind;
  const auto engine = make_engine(cfg);
  Rng rng{1234};
  for (std::size_t i = 0; i < n_subs; ++i) {
    engine->add(aoi_subscription(i + 1, rng, kWorld), NodeId{i % n_clients}, host);
  }
  // Pre-generate publications so generation cost stays out of the timing.
  std::vector<Publication> pubs;
  pubs.reserve(n_pubs);
  for (std::size_t i = 0; i < n_pubs; ++i) {
    Publication pub;
    pub.set("x", rng.uniform(-kWorld, kWorld));
    pub.set("y", rng.uniform(-kWorld, kWorld));
    pubs.push_back(std::move(pub));
  }

  std::vector<NodeId> dests;
  std::size_t delivered = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < n_pubs; ++i) {
    // Advance virtual time ~1 ms per publication (keeps VES/CLEES honest).
    host.advance_to(SimTime::from_micros(static_cast<std::int64_t>(i) * 1000));
    dests.clear();
    engine->match(pubs[i], nullptr, host, dests);
    delivered += dests.size();
  }
  const auto elapsed = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - start).count();
  static volatile std::size_t sink = 0;
  sink = sink + delivered;
  return static_cast<double>(n_pubs) / elapsed;
}

}  // namespace

int main() {
  std::cout << "Reproduction of Figure 10(a)/(b): lazy-engine publication throughput\n";

  print_banner("Figure 10(a): throughput vs evolving subscriptions (100 clients)");
  {
    Table t{{"evolving subs", "VES (pubs/s)", "LEES (pubs/s)", "CLEES (pubs/s)"}};
    for (const std::size_t n : {250u, 500u, 1000u, 2000u, 4000u}) {
      t.add_row({std::to_string(n),
                 Table::fmt(throughput(EngineKind::kVes, n, 100, 4000), 0),
                 Table::fmt(throughput(EngineKind::kLees, n, 100, 4000), 0),
                 Table::fmt(throughput(EngineKind::kClees, n, 100, 4000), 0)});
    }
    t.print();
    std::cout << "paper: LEES throughput degrades with subscription count; CLEES is\n"
                 "less sensitive thanks to the version cache.\n";
  }

  print_banner("Figure 10(b): throughput vs clients (1000 evolving subs)");
  {
    Table t{{"clients", "subs/client", "LEES (pubs/s)", "CLEES (pubs/s)"}};
    for (const std::size_t c : {1u, 10u, 100u, 1000u}) {
      t.add_row({std::to_string(c), std::to_string(1000 / c),
                 Table::fmt(throughput(EngineKind::kLees, 1000, c, 4000), 0),
                 Table::fmt(throughput(EngineKind::kClees, 1000, c, 4000), 0)});
    }
    t.print();
    std::cout << "paper: LEES is fastest when subscriptions concentrate on few clients\n"
                 "(early exit per client) and degrades as they disperse; CLEES is less\n"
                 "sensitive to the ratio.\n";
  }
  return 0;
}
