#include "evolving/engine.hpp"

#include <algorithm>
#include <cassert>

#include "evolving/clees_engine.hpp"
#include "evolving/hybrid_engine.hpp"
#include "evolving/lees_engine.hpp"
#include "evolving/parametric_engine.hpp"
#include "evolving/static_engine.hpp"
#include "evolving/ves_engine.hpp"

namespace evps {

const char* to_string(EngineKind kind) noexcept {
  switch (kind) {
    case EngineKind::kStatic: return "static";
    case EngineKind::kParametric: return "parametric";
    case EngineKind::kVes: return "VES";
    case EngineKind::kLees: return "LEES";
    case EngineKind::kClees: return "CLEES";
    case EngineKind::kHybrid: return "hybrid";
  }
  return "?";
}

BrokerEngine::BrokerEngine(const EngineConfig& config)
    : config_(config), matcher_(make_matcher(config.matcher)) {}

void BrokerEngine::add(const SubscriptionPtr& sub, NodeId dest, EngineHost& host,
                       bool dest_is_broker) {
  if (!sub) throw std::invalid_argument("cannot install a null subscription");
  if (!sub->id().valid()) throw std::invalid_argument("subscription must carry a valid id");
  const auto [it, inserted] = subs_.emplace(sub->id(), Installed{sub, dest, dest_is_broker});
  if (!inserted) throw std::invalid_argument("duplicate subscription id " + sub->id().str());
  try {
    do_add(it->second, host);
  } catch (...) {
    subs_.erase(it);
    throw;
  }
}

bool BrokerEngine::remove(SubscriptionId id, EngineHost& host) {
  const auto it = subs_.find(id);
  if (it == subs_.end()) return false;
  do_remove(it->second, host);
  subs_.erase(it);
  return true;
}

bool BrokerEngine::update(SubscriptionId id, const std::vector<std::optional<Value>>& new_values,
                          EngineHost& host) {
  const auto it = subs_.find(id);
  if (it == subs_.end()) return false;
  const ScopedTimer timer(costs_.maintenance);

  const Installed old_entry = it->second;
  const auto& old_sub = *old_entry.sub;
  if (new_values.size() > old_sub.predicates().size()) {
    throw std::invalid_argument("update carries more values than predicates");
  }
  // Rebuild predicates with replaced operands.
  std::vector<Predicate> preds;
  preds.reserve(old_sub.predicates().size());
  for (std::size_t i = 0; i < old_sub.predicates().size(); ++i) {
    const auto& p = old_sub.predicates()[i];
    if (i < new_values.size() && new_values[i].has_value()) {
      preds.push_back(Predicate{p.attribute(), p.op(), *new_values[i]});
    } else {
      preds.push_back(p);
    }
  }
  Subscription rebuilt{old_sub.id(), old_sub.subscriber(), std::move(preds)};
  rebuilt.set_mei(old_sub.mei());
  rebuilt.set_tt(old_sub.tt());
  rebuilt.set_validity(old_sub.validity());
  rebuilt.set_epoch(old_sub.epoch());

  do_remove(old_entry, host);
  it->second.sub = std::make_shared<const Subscription>(std::move(rebuilt));
  do_add(it->second, host);
  return true;
}

void BrokerEngine::match(const Publication& pub, const VariableSnapshot* snapshot,
                         EngineHost& host, std::vector<NodeId>& destinations) {
  do_match(pub, snapshot, host, destinations);
  std::sort(destinations.begin(), destinations.end());
  destinations.erase(std::unique(destinations.begin(), destinations.end()), destinations.end());
}

NodeId BrokerEngine::destination_of(SubscriptionId id) const noexcept {
  const auto it = subs_.find(id);
  return it == subs_.end() ? NodeId::invalid() : it->second.dest;
}

SubscriptionPtr BrokerEngine::subscription_of(SubscriptionId id) const noexcept {
  const auto it = subs_.find(id);
  return it == subs_.end() ? nullptr : it->second.sub;
}

EvalScope& BrokerEngine::publication_scope(const Publication& pub,
                                           const VariableSnapshot* snapshot,
                                           const VariableRegistry& registry, SimTime now) {
  if (snapshot != nullptr) {
    // Snapshot consistency (Section V-D): evaluate as if at the entry-point
    // broker at the instant the publication entered the system.
    scope_.rebind(&registry, pub.entry_time());
    for (const auto& [var, value] : *snapshot) scope_.bind(var, value);
  } else {
    scope_.rebind(&registry, now);
  }
  return scope_;
}

const BrokerEngine::Installed* BrokerEngine::installed_entry(SubscriptionId id) const noexcept {
  const auto it = subs_.find(id);
  assert(it != subs_.end() && "matcher returned an id with no installed subscription");
  return it == subs_.end() ? nullptr : &it->second;
}

Duration BrokerEngine::effective_mei(const Subscription& sub) const noexcept {
  return sub.mei() > Duration::zero() ? sub.mei() : config_.default_mei;
}

Duration BrokerEngine::effective_tt(const Subscription& sub) const noexcept {
  return sub.tt() > Duration::zero() ? sub.tt() : config_.default_tt;
}

BrokerEnginePtr make_engine(const EngineConfig& config) {
  switch (config.kind) {
    case EngineKind::kStatic: return std::make_unique<StaticEngine>(config);
    case EngineKind::kParametric: return std::make_unique<ParametricEngine>(config);
    case EngineKind::kVes: return std::make_unique<VesEngine>(config);
    case EngineKind::kLees: return std::make_unique<LeesEngine>(config);
    case EngineKind::kClees: return std::make_unique<CleesEngine>(config);
    case EngineKind::kHybrid: return std::make_unique<HybridEngine>(config);
  }
  throw std::invalid_argument("unknown engine kind");
}

}  // namespace evps
