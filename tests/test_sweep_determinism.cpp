// Bit-determinism of the Monte-Carlo sweep harness: the same (scenario,
// seed) replica must reduce to bit-identical metrics no matter how many
// worker threads ran the sweep or how often it is repeated, and the
// aggregates (folded in replica-index order) must follow. Runs in the TSan
// preset too — the replica fan-out is the only place the harness shares
// anything across threads.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "workloads/sweep.hpp"

namespace evps {
namespace {

SweepOptions small_options(SweepScenario scenario) {
  SweepOptions o;
  o.scenario = scenario;
  o.replicas = 4;
  o.root_seed = 97;
  o.scale = 0.5;  // keep the TSan run cheap
  return o;
}

void expect_same_aggregate(const MetricSummary& a, const MetricSummary& b) {
  // Doubles compared exactly: the determinism contract is bit-for-bit.
  EXPECT_EQ(a.stats.count(), b.stats.count());
  EXPECT_EQ(a.stats.mean(), b.stats.mean());
  EXPECT_EQ(a.stats.variance(), b.stats.variance());
  EXPECT_EQ(a.ci.defined, b.ci.defined);
  EXPECT_EQ(a.ci.half_width, b.ci.half_width);
  EXPECT_EQ(a.p50, b.p50);
  EXPECT_EQ(a.p90, b.p90);
  EXPECT_EQ(a.p99, b.p99);
}

void expect_same_sweep(const SweepResult& a, const SweepResult& b) {
  ASSERT_EQ(a.replicas.size(), b.replicas.size());
  for (std::size_t i = 0; i < a.replicas.size(); ++i) {
    EXPECT_EQ(a.replicas[i], b.replicas[i]) << "replica " << i;
  }
  expect_same_aggregate(a.latency_mean, b.latency_mean);
  expect_same_aggregate(a.latency_p99, b.latency_p99);
  expect_same_aggregate(a.accuracy, b.accuracy);
  expect_same_aggregate(a.deliveries, b.deliveries);
  expect_same_aggregate(a.overlay_msgs, b.overlay_msgs);
  expect_same_aggregate(a.msgs_per_delivery, b.msgs_per_delivery);
  expect_same_aggregate(a.subscription_msgs, b.subscription_msgs);
}

class SweepDeterminism : public ::testing::TestWithParam<SweepScenario> {};

TEST_P(SweepDeterminism, WorkerCountNeverChangesABit) {
  SweepOptions o = small_options(GetParam());
  o.workers = 1;
  const SweepResult one = run_sweep(o);
  for (const std::size_t workers : {std::size_t{2}, std::size_t{4}}) {
    o.workers = workers;
    const SweepResult many = run_sweep(o);
    SCOPED_TRACE("workers=" + std::to_string(workers));
    expect_same_sweep(one, many);
  }
}

TEST_P(SweepDeterminism, RepeatedRunsAreBitIdentical) {
  SweepOptions o = small_options(GetParam());
  o.workers = 2;
  const SweepResult first = run_sweep(o);
  const SweepResult second = run_sweep(o);
  expect_same_sweep(first, second);
}

TEST_P(SweepDeterminism, ReplicaIsAPureFunctionOfSeed) {
  const SweepOptions o = small_options(GetParam());
  const std::uint64_t seed = derive_replica_seed(o.root_seed, 2);
  const ReplicaMetrics a = run_replica(o, seed);
  const ReplicaMetrics b = run_replica(o, seed);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.seed, seed);
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, SweepDeterminism,
                         ::testing::Values(SweepScenario::kGame, SweepScenario::kHft,
                                           SweepScenario::kGameRotated),
                         [](const auto& info) { return to_string(info.param); });

TEST(SweepAggregation, LinkBatchZeroIsPinnedToOne) {
  // run_sweep must not let results depend on the EVPS_LINK_BATCH env default.
  SweepOptions o = small_options(SweepScenario::kGame);
  o.link_batch_size = 0;
  const SweepResult a = run_sweep(o);
  EXPECT_EQ(a.options.link_batch_size, 1u);
  o.link_batch_size = 1;
  const SweepResult b = run_sweep(o);
  expect_same_sweep(a, b);
}

TEST(SweepAggregation, RejectsZeroReplicas) {
  SweepOptions o = small_options(SweepScenario::kGame);
  o.replicas = 0;
  EXPECT_THROW((void)run_sweep(o), std::invalid_argument);
}

}  // namespace
}  // namespace evps
