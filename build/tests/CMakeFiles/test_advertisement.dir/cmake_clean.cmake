file(REMOVE_RECURSE
  "CMakeFiles/test_advertisement.dir/test_advertisement.cpp.o"
  "CMakeFiles/test_advertisement.dir/test_advertisement.cpp.o.d"
  "test_advertisement"
  "test_advertisement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_advertisement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
