
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/evps_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/evps_sim.dir/network.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/evps_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/evps_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/sim/CMakeFiles/evps_sim.dir/stats.cpp.o" "gcc" "src/sim/CMakeFiles/evps_sim.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/evps_common.dir/DependInfo.cmake"
  "/root/repo/build/src/message/CMakeFiles/evps_message.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/evps_expr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
