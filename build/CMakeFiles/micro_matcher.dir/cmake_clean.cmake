file(REMOVE_RECURSE
  "CMakeFiles/micro_matcher.dir/bench/micro_matcher.cpp.o"
  "CMakeFiles/micro_matcher.dir/bench/micro_matcher.cpp.o.d"
  "bench/micro_matcher"
  "bench/micro_matcher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_matcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
