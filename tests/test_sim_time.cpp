#include "common/sim_time.hpp"

#include <gtest/gtest.h>

namespace evps {
namespace {

TEST(SimTime, Construction) {
  EXPECT_EQ(SimTime::from_micros(1500).micros(), 1500);
  EXPECT_EQ(SimTime::from_millis(2).micros(), 2000);
  EXPECT_EQ(SimTime::from_seconds(1.5).micros(), 1'500'000);
  EXPECT_EQ(SimTime::zero().micros(), 0);
}

TEST(SimTime, Conversions) {
  const SimTime t = SimTime::from_micros(2'500'000);
  EXPECT_EQ(t.millis(), 2500);
  EXPECT_DOUBLE_EQ(t.seconds(), 2.5);
}

TEST(SimTime, Ordering) {
  EXPECT_LT(SimTime::from_seconds(1), SimTime::from_seconds(2));
  EXPECT_EQ(SimTime::from_millis(1000), SimTime::from_seconds(1.0));
  EXPECT_LT(SimTime::zero(), SimTime::max());
}

TEST(Duration, Construction) {
  EXPECT_EQ(Duration::micros(5).count_micros(), 5);
  EXPECT_EQ(Duration::millis(5).count_micros(), 5000);
  EXPECT_EQ(Duration::seconds(0.5).count_micros(), 500'000);
  EXPECT_EQ(Duration::minutes(2).count_micros(), 120'000'000);
}

TEST(Duration, Arithmetic) {
  const Duration a = Duration::seconds(2);
  const Duration b = Duration::seconds(0.5);
  EXPECT_EQ((a + b).count_seconds(), 2.5);
  EXPECT_EQ((a - b).count_seconds(), 1.5);
  EXPECT_EQ((a * 3).count_seconds(), 6.0);
  EXPECT_EQ((3 * b).count_seconds(), 1.5);
  EXPECT_EQ((a / 4).count_seconds(), 0.5);
}

TEST(Duration, NegativeAllowed) {
  const Duration d = Duration::seconds(1) - Duration::seconds(3);
  EXPECT_EQ(d.count_seconds(), -2.0);
  EXPECT_LT(d, Duration::zero());
}

TEST(SimTimeDuration, Mixed) {
  const SimTime t = SimTime::from_seconds(10);
  EXPECT_EQ((t + Duration::seconds(5)).seconds(), 15.0);
  EXPECT_EQ((t - Duration::seconds(4)).seconds(), 6.0);
  EXPECT_EQ((t - SimTime::from_seconds(4)).count_seconds(), 6.0);
  SimTime u = t;
  u += Duration::seconds(1);
  EXPECT_EQ(u.seconds(), 11.0);
  u -= Duration::seconds(2);
  EXPECT_EQ(u.seconds(), 9.0);
}

}  // namespace
}  // namespace evps
