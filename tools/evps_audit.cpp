// evps-audit — whole-overlay static verification of routing state.
//
// Builds a simulated broker overlay, replays a scenario file (the evps-lint
// grammar: var / adv / sub directives) against it, lets the simulation
// settle, then exports a quiesced snapshot of every broker
// (Broker::export_snapshot) and verifies the global routing invariants with
// the OverlayAuditor (analysis/audit): delivery completeness, covering-
// forest well-formedness, quiescence, and no ghost state. Violations print
// lint-style (broker, subscription, witness chain).
//
// Options:
//   --overlay=line|star      overlay topology (default line)
//   --brokers=N              broker count (default 3; star: 1 hub + N-1 leaves)
//   --engine=KIND            static|parametric|ves|lees|clees|hybrid (default clees)
//   --routing=MODE           flooding|advertisement (default flooding)
//   --covering               enable covering-based subscription routing
//   --link-batch=N           per-link publication batch size (default 1)
//   --settle=SECONDS         virtual time to quiesce after the replay (default 5)
//   --json                   machine-readable report on stdout
//   --dump                   print the canonical snapshot text (debugging)
//
// Exit codes mirror evps-lint: 0 = all invariants hold, 1 = at least one
// violation (or scenario error), 2 = usage or file I/O problem.
//
// The --json schema wraps the auditor's report:
//   {"path": "...", "exit": 0|1,
//    "clean": bool, "brokers": N, "subscriptions": N, "paths": N,
//    "witnesses": N,
//    "violations": [{"invariant": "...", "broker": "...", "sub": id|null,
//                    "message": "...", "witness": ["...", ...]}, ...]}
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/scenario.hpp"
#include "broker/audit_hook.hpp"
#include "broker/overlay.hpp"

namespace {

using namespace evps;

struct Options {
  std::string overlay = "line";
  std::size_t brokers = 3;
  std::string engine = "clees";
  std::string routing = "flooding";
  bool covering = false;
  std::size_t link_batch = 1;
  double settle = 5.0;
  bool json = false;
  bool dump = false;
};

bool parse_engine(const std::string& name, EngineKind& out) {
  if (name == "static") {
    out = EngineKind::kStatic;
  } else if (name == "parametric") {
    out = EngineKind::kParametric;
  } else if (name == "ves") {
    out = EngineKind::kVes;
  } else if (name == "lees") {
    out = EngineKind::kLees;
  } else if (name == "clees") {
    out = EngineKind::kClees;
  } else if (name == "hybrid") {
    out = EngineKind::kHybrid;
  } else {
    return false;
  }
  return true;
}

int audit_file(const std::string& path, const Options& opts) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "evps-audit: cannot open " << path << "\n";
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const Scenario scenario = parse_scenario(buffer.str());

  int scenario_errors = 0;
  for (const ScenarioDirective& d : scenario.directives) {
    if (d.kind != ScenarioDirective::Kind::kError) continue;
    ++scenario_errors;
    if (!opts.json) {
      std::cerr << path << ":" << d.line_no << ": error: " << d.error_message << "\n";
      std::cerr << "  " << d.line << "\n";
      std::cerr << "  " << std::string(d.body_col + d.error_offset, ' ') << '^'
                << std::string(d.error_token.size() > 1 ? d.error_token.size() - 1 : 0, '~')
                << "\n";
    }
  }

  EngineKind engine_kind = EngineKind::kClees;
  parse_engine(opts.engine, engine_kind);

  BrokerConfig config;
  config.engine.kind = engine_kind;
  config.routing =
      opts.routing == "advertisement" ? RoutingMode::kAdvertisement : RoutingMode::kFlooding;
  config.covering = opts.covering;
  config.link_batch_size = opts.link_batch;

  Simulator sim;
  Overlay overlay(sim);
  const std::size_t broker_count = std::max<std::size_t>(opts.brokers, 1);
  std::vector<Broker*> brokers =
      opts.overlay == "star" && broker_count > 1
          ? overlay.build_star(broker_count - 1, config, Duration::seconds(0.001))
          : overlay.build_line(broker_count, config, Duration::seconds(0.001));

  // One publisher at the first broker (advertisements + variable pushes),
  // one subscriber per broker; subscriptions round-robin across them so the
  // auditor has cross-overlay paths to verify.
  PubSubClient& publisher = overlay.add_client("publisher");
  publisher.connect(*brokers.front(), Duration::seconds(0.001));
  std::vector<PubSubClient*> subscribers;
  subscribers.reserve(brokers.size());
  for (std::size_t i = 0; i < brokers.size(); ++i) {
    PubSubClient& sub = overlay.add_client("subscriber" + std::to_string(i));
    sub.connect(*brokers[i], Duration::seconds(0.001));
    subscribers.push_back(&sub);
  }

  // Replay in order; directives take effect before later ones are issued
  // (run_until, not run_all — evolving engines keep re-arming timers).
  const Duration step = Duration::seconds(1.0);
  std::size_t next_subscriber = 0;
  try {
    for (const ScenarioDirective& d : scenario.directives) {
      switch (d.kind) {
        case ScenarioDirective::Kind::kVar:
          // Declared ranges are broker-local contract metadata: install the
          // declaration on every broker, then flood the value.
          for (Broker* b : brokers) b->variables().declare_range(d.var_name, d.var_lo, d.var_hi);
          if (d.var_has_value) brokers.front()->set_variable(d.var_name, d.var_value);
          break;
        case ScenarioDirective::Kind::kAdv:
          publisher.advertise(d.sub.predicates());
          break;
        case ScenarioDirective::Kind::kSub: {
          subscribers[next_subscriber]->subscribe(d.sub);
          next_subscriber = (next_subscriber + 1) % subscribers.size();
          break;
        }
        case ScenarioDirective::Kind::kError:
          break;
      }
      sim.run_until(sim.now() + step);
    }
    sim.run_until(sim.now() + Duration::seconds(opts.settle));
  } catch (const std::exception& e) {
    // The overlay itself refused the scenario (e.g. an evolving subscription
    // against --engine=static): the audit cannot be completed.
    std::cerr << "evps-audit: " << path << ": replay failed: " << e.what() << "\n";
    return 2;
  }

  const audit::OverlaySnapshot snap = audit::snapshot_overlay(overlay);
  if (opts.dump && !opts.json) std::cout << audit::canonical_text(snap);
  const audit::AuditReport report = audit::OverlayAuditor().audit(snap);

  const int rc = (!report.clean() || scenario_errors != 0) ? 1 : 0;
  if (opts.json) {
    std::ostringstream os;
    report.to_json(os);
    std::string body = os.str();
    // Splice path/exit/scenario_errors into the report object.
    std::cout << "{\"path\":\"" << path << "\",\"exit\":" << rc
              << ",\"scenario_errors\":" << scenario_errors << "," << body.substr(1) << "\n";
  } else {
    std::cout << report.format();
    std::cout << path << ": " << (rc == 0 ? "clean" : "VIOLATIONS FOUND") << "\n";
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  std::vector<std::string> paths;
  bool usage_error = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto num_opt = [&arg](std::string_view prefix, auto& out) {
      if (!arg.starts_with(prefix)) return false;
      out = static_cast<std::remove_reference_t<decltype(out)>>(
          std::stod(std::string(arg.substr(prefix.size()))));
      return true;
    };
    try {
      if (arg == "--covering") {
        opts.covering = true;
      } else if (arg == "--json") {
        opts.json = true;
      } else if (arg == "--dump") {
        opts.dump = true;
      } else if (arg.starts_with("--overlay=")) {
        opts.overlay = std::string(arg.substr(10));
      } else if (arg.starts_with("--engine=")) {
        opts.engine = std::string(arg.substr(9));
      } else if (arg.starts_with("--routing=")) {
        opts.routing = std::string(arg.substr(10));
      } else if (num_opt("--brokers=", opts.brokers) || num_opt("--link-batch=", opts.link_batch) ||
                 num_opt("--settle=", opts.settle)) {
        // handled
      } else if (arg == "--help" || arg == "-h") {
        paths.clear();
        break;
      } else if (!arg.empty() && arg.front() == '-') {
        std::cerr << "evps-audit: unknown option " << arg << "\n";
        return 2;
      } else {
        paths.emplace_back(arg);
      }
    } catch (const std::exception&) {
      std::cerr << "evps-audit: bad value in " << arg << "\n";
      return 2;
    }
  }
  EngineKind ignored{};
  if (!parse_engine(opts.engine, ignored)) {
    std::cerr << "evps-audit: unknown engine " << opts.engine << "\n";
    usage_error = true;
  }
  if (opts.overlay != "line" && opts.overlay != "star") {
    std::cerr << "evps-audit: unknown overlay " << opts.overlay << "\n";
    usage_error = true;
  }
  if (opts.routing != "flooding" && opts.routing != "advertisement") {
    std::cerr << "evps-audit: unknown routing mode " << opts.routing << "\n";
    usage_error = true;
  }
  if (paths.empty() || usage_error) {
    std::cerr
        << "usage: evps-audit [options] <scenario>...\n"
        << "Replays scenarios (evps-lint grammar) against a simulated overlay and\n"
        << "statically verifies global routing invariants over the end state.\n"
        << "  --overlay=line|star      topology (default line)\n"
        << "  --brokers=N              broker count (default 3)\n"
        << "  --engine=KIND            static|parametric|ves|lees|clees|hybrid (default clees)\n"
        << "  --routing=MODE           flooding|advertisement (default flooding)\n"
        << "  --covering               covering-based subscription routing\n"
        << "  --link-batch=N           per-link batch size (default 1)\n"
        << "  --settle=SECONDS         settle time before the snapshot (default 5)\n"
        << "  --json                   machine-readable report on stdout\n"
        << "  --dump                   print the canonical snapshot text\n"
        << "Exit codes: 0 invariants hold, 1 violations found, 2 usage/IO error.\n";
    return 2;
  }
  int rc = 0;
  for (const std::string& path : paths) {
    rc = std::max(rc, audit_file(path, opts));
  }
  return rc;
}
