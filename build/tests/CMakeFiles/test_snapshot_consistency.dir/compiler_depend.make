# Empty compiler generated dependencies file for test_snapshot_consistency.
# This may be replaced when dependencies are built.
