# Empty compiler generated dependencies file for test_advertisement.
# This may be replaced when dependencies are built.
