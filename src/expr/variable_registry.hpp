// Broker-local store of evolution variables (Section III-B / V).
//
// Each broker keeps the current value of every discrete evolution variable it
// knows about (e.g. in-game visibility `v`, a stock price, outgoing
// bandwidth). Values are piecewise-constant over virtual time and the full
// change history is retained, which lets the ground-truth oracle re-evaluate
// any subscription at the exact instant a publication entered the system
// (Section V-D consistency model).
//
// The continuous variable `t` (elapsed time since a subscription was
// installed, "initialized to 0 at the time of subscription") is not stored
// here: it is derived from the evaluation scope's clock and the
// subscription's epoch.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/sim_time.hpp"
#include "expr/ast.hpp"

namespace evps {

/// Name of the reserved continuous evolution variable: elapsed seconds since
/// the owning subscription was installed.
inline constexpr std::string_view kElapsedTimeVar = "t";

class VariableRegistry {
 public:
  using ListenerId = std::uint64_t;
  /// Invoked synchronously after a variable changes value.
  using Listener = std::function<void(const std::string& name, double value, SimTime when)>;

  VariableRegistry() = default;

  /// Set `name` to `value` effective at `when`. `when` must be >= the time of
  /// the variable's previous change (piecewise-constant history, appended in
  /// time order); violations throw std::invalid_argument.
  void set(std::string_view name, double value, SimTime when);

  [[nodiscard]] bool has(std::string_view name) const noexcept;

  /// Latest value, or nullopt if never set.
  [[nodiscard]] std::optional<double> get(std::string_view name) const noexcept;

  /// Value in effect at time `when` (the last change at or before `when`),
  /// or nullopt if the variable did not exist yet.
  [[nodiscard]] std::optional<double> get_at(std::string_view name, SimTime when) const noexcept;

  /// Number of changes applied to `name` (0 if unknown). Monotonic.
  [[nodiscard]] std::uint64_t version(std::string_view name) const noexcept;

  /// Total number of changes applied across all variables. Monotonic.
  [[nodiscard]] std::uint64_t global_version() const noexcept { return global_version_; }

  /// Time of the last change to `name` (nullopt if unknown).
  [[nodiscard]] std::optional<SimTime> last_change(std::string_view name) const noexcept;

  [[nodiscard]] std::vector<std::string> names() const;

  ListenerId add_listener(Listener listener);
  void remove_listener(ListenerId id);

 private:
  struct History {
    // (change time, value), strictly ordered by time. Later entries override.
    std::vector<std::pair<SimTime, double>> changes;
  };
  std::map<std::string, History, std::less<>> vars_;
  std::uint64_t global_version_ = 0;
  std::uint64_t next_listener_ = 1;
  std::map<ListenerId, Listener> listeners_;
};

/// Env implementation combining a VariableRegistry snapshot-in-time with the
/// per-subscription elapsed-time variable and optional local overrides.
class EvalScope final : public Env {
 public:
  /// `registry` may be null (then only `t` and overrides resolve).
  /// `now` is the evaluation instant; `epoch` is the subscription install
  /// time, so `t = (now - epoch)` in seconds.
  EvalScope(const VariableRegistry* registry, SimTime now, SimTime epoch) noexcept
      : registry_(registry), now_(now), epoch_(epoch) {}

  /// Bind (or shadow) a variable locally, e.g. piggybacked snapshot values.
  EvalScope& bind(std::string name, double value) {
    overrides_.insert_or_assign(std::move(name), value);
    return *this;
  }

  [[nodiscard]] double lookup(std::string_view name) const override;
  [[nodiscard]] bool has(std::string_view name) const override;

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] SimTime epoch() const noexcept { return epoch_; }

 private:
  const VariableRegistry* registry_;
  SimTime now_;
  SimTime epoch_;
  std::map<std::string, double, std::less<>> overrides_;
};

}  // namespace evps
