file(REMOVE_RECURSE
  "CMakeFiles/test_predicate.dir/test_predicate.cpp.o"
  "CMakeFiles/test_predicate.dir/test_predicate.cpp.o.d"
  "test_predicate"
  "test_predicate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_predicate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
