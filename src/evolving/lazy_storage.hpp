// Shared storage scaffolding for the lazy evolving engines (LEES's LEME,
// CLEES's Lazy Evolution Storage, the hybrid's adaptive store).
//
// All three keep evolving parts grouped by *destination* (next hop) so a
// destination's evaluation can stop at the first matching part (the paper's
// early-exit optimisation, Fig. 10(b)), and all three need two pieces of
// per-publication scratch:
//
//   * which evolving parts' static halves appeared in the matcher result M1
//     (parts with a static part may only match if it did), and
//   * which destinations are already settled by a purely-static match.
//
// The seed allocated an unordered_set for each on every do_match. This
// helper replaces both with generation-stamped marks: every part owns a
// dense scratch slot (recycled through a free list) in `m1_stamp_`, every
// group carries a `done_stamp`, and opening a match bumps the generation
// instead of clearing anything — the same trick the matchers use for their
// hit counters (DESIGN.md §7). Steady-state matching therefore performs no
// heap allocation in this layer.
//
// `Extra` is the engine-specific per-part payload (empty for LEES, the TT
// cache for CLEES, mode + version for the hybrid).
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "analysis/verifier.hpp"
#include "common/ids.hpp"
#include "expr/variable_registry.hpp"
#include "message/messages.hpp"
#include "message/predicate.hpp"
#include "message/subscription.hpp"

namespace evps {

/// One materialised evolving-predicate bound (the CLEES TT cache and the
/// hybrid's version store). `unbound` records that evaluation hit an unbound
/// variable: such a predicate can never match, regardless of operator —
/// mirroring Predicate::materialize's never-matching NaN-kLt version.
struct CachedBound {
  double bound = 0.0;
  bool unbound = false;
};

/// pub_value OP bounds[i] for every compiled predicate. Missing attributes
/// and unbound bounds fail closed; NaN bounds from arithmetic keep the
/// predicate's own operator (only kNe accepts incomparables), exactly like
/// matching against a materialised Predicate.
[[nodiscard]] inline bool cached_bounds_match(const std::vector<CompiledPredicate>& preds,
                                              const std::vector<CachedBound>& bounds,
                                              const Publication& pub) {
  for (std::size_t i = 0; i < preds.size(); ++i) {
    const Value* v = pub.get(preds[i].attr());
    if (v == nullptr || bounds[i].unbound) return false;
    if (!apply_rel_op(preds[i].op(), *v, Value{bounds[i].bound})) return false;
  }
  return true;
}

/// Materialise every predicate's bound under `scope` into `bounds`
/// (clearing it first). All bounds are evaluated even after a failing one:
/// the whole version is cached, like the seed's materialise-then-match.
inline void materialize_bounds(const std::vector<CompiledPredicate>& preds,
                               const EvalScope& scope, std::vector<double>& stack,
                               std::vector<CachedBound>& bounds) {
  bounds.clear();
  if (bounds.capacity() < preds.size()) bounds.reserve(preds.size());
  for (const auto& cp : preds) {
    CachedBound cb;
    cb.bound = cp.bound(scope, stack, cb.unbound);
    bounds.push_back(cb);
  }
}

template <class Extra>
class LazyStorage {
 public:
  struct Part {
    SubscriptionId id;
    SubscriptionPtr sub;  // carries epoch and metadata
    /// Compiled evolving predicates (attribute ids + flat programs).
    std::vector<CompiledPredicate> preds;
    bool has_static_part = false;
    std::uint32_t slot = 0;  // dense scratch index, stable for the part's life
    Extra extra{};
  };

  struct Group {
    std::vector<Part> parts;
    std::uint32_t done_stamp = 0;  // dest settled iff == current generation
  };

  /// Build a part from an evolving subscription (compiles its predicates).
  /// Every compiled program is verified before it can reach the evaluation
  /// hot path (which runs without bounds checks); malformed programs throw
  /// VerifyError and the part is never installed.
  [[nodiscard]] Part make_part(const SubscriptionPtr& sub, bool has_static_part) {
    Part part;
    part.id = sub->id();
    part.sub = sub;
    const auto& preds = sub->predicates();
    for (const auto& p : preds) {
      if (!p.is_evolving()) continue;
      part.preds.emplace_back(p);
      verify_or_throw(part.preds.back().program());
    }
    part.has_static_part = has_static_part;
    if (!free_slots_.empty()) {
      part.slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      part.slot = static_cast<std::uint32_t>(m1_stamp_.size());
      m1_stamp_.push_back(0);
    }
    return part;
  }

  void add(Part part, NodeId dest) {
    slot_of_.emplace(part.id, part.slot);
    auto [it, inserted] = groups_.try_emplace(dest);
    if (inserted) group_of_.emplace(dest, &it->second);
    it->second.parts.push_back(std::move(part));
    ++count_;
  }

  /// Remove the part for `id` under `dest`; false if unknown.
  bool remove(SubscriptionId id, NodeId dest) {
    const auto git = groups_.find(dest);
    if (git == groups_.end()) return false;
    auto& parts = git->second.parts;
    for (auto it = parts.begin(); it != parts.end(); ++it) {
      if (it->id != id) continue;
      free_slots_.push_back(it->slot);
      slot_of_.erase(id);
      parts.erase(it);
      --count_;
      if (parts.empty()) {
        group_of_.erase(dest);
        groups_.erase(git);
      }
      return true;
    }
    return false;
  }

  /// Open a new per-publication match round (invalidates all stamps in O(1)).
  void begin_match() {
    if (++gen_ == 0) {  // generation wrapped: clear stamps explicitly
      std::fill(m1_stamp_.begin(), m1_stamp_.end(), 0);
      for (auto& [dest, group] : groups_) group.done_stamp = 0;
      gen_ = 1;
    }
  }

  /// Record a matcher hit for `id`. Returns true iff `id` is an evolving
  /// part here (i.e. the hit was its static half, now marked).
  bool note_m1(SubscriptionId id) {
    const auto it = slot_of_.find(id);
    if (it == slot_of_.end()) return false;
    m1_stamp_[it->second] = gen_;
    return true;
  }

  /// Mark `dest` settled for this round (a purely-static subscription of
  /// that destination already matched).
  void mark_done(NodeId dest) {
    const auto it = group_of_.find(dest);
    if (it != group_of_.end()) it->second->done_stamp = gen_;
  }

  [[nodiscard]] bool done(const Group& group) const noexcept {
    return group.done_stamp == gen_;
  }
  [[nodiscard]] bool m1_hit(const Part& part) const noexcept {
    return m1_stamp_[part.slot] == gen_;
  }

  /// Groups in deterministic (destination) order.
  [[nodiscard]] std::map<NodeId, Group>& groups() noexcept { return groups_; }
  [[nodiscard]] const std::map<NodeId, Group>& groups() const noexcept { return groups_; }

  /// Number of evolving parts stored.
  [[nodiscard]] std::size_t size() const noexcept { return count_; }

 private:
  std::map<NodeId, Group> groups_;  // node handles are stable -> Group* is too
  std::unordered_map<NodeId, Group*> group_of_;
  std::unordered_map<SubscriptionId, std::uint32_t> slot_of_;
  std::vector<std::uint32_t> m1_stamp_;  // slot -> stamp; valid iff == gen_
  std::vector<std::uint32_t> free_slots_;
  std::size_t count_ = 0;
  std::uint32_t gen_ = 0;
};

}  // namespace evps
