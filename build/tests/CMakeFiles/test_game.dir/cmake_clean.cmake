file(REMOVE_RECURSE
  "CMakeFiles/test_game.dir/test_game.cpp.o"
  "CMakeFiles/test_game.dir/test_game.cpp.o.d"
  "test_game"
  "test_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
