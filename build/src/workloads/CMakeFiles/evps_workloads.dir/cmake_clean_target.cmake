file(REMOVE_RECURSE
  "libevps_workloads.a"
)
