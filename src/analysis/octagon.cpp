#include "analysis/octagon.hpp"

#include <cmath>

namespace evps {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kMax = std::numeric_limits<double>::max();

/// Upper bound of the real sum a + b. Exact sums pass through unchanged
/// (small-integer octagon constants stay crisp); inexact ones are widened one
/// ulp towards +inf, which also turns a negative overflow into -DBL_MAX — a
/// weaker, still-implied bound. A +inf operand is vacuous and stays vacuous
/// (including the indeterminate inf + -inf).
double up_add(double a, double b) noexcept {
  if (a == kInf || b == kInf) return kInf;
  const double s = a + b;
  if (s - a == b && s - b == a) return s;
  return std::nextafter(s, kInf);
}

/// Upper bound of the real value c/2 (exact except subnormal halving).
double up_half(double c) noexcept {
  const double h = c / 2.0;
  if (std::isfinite(h) && h + h < c) return std::nextafter(h, kInf);
  return h;
}

/// Upper bound of the real value 2c (exact except overflow).
double up_twice(double c) noexcept {
  const double d = 2.0 * c;
  if (d == -kInf && std::isfinite(c)) return -kMax;
  return d;
}

/// Lower bound of the real value 2c, for the query side of entailment: a
/// derived bound <= this is <= the real 2c. Positive overflow means the real
/// product strictly exceeds DBL_MAX, so DBL_MAX is a valid lower bound;
/// negative overflow has no finite lower bound and degrades to -inf (only an
/// unsatisfiable system entails it).
double down_twice(double c) noexcept {
  const double d = 2.0 * c;
  if (d == kInf && std::isfinite(c)) return kMax;
  return d;
}

std::size_t pos(std::size_t i) noexcept { return 2 * i; }
std::size_t neg(std::size_t i) noexcept { return 2 * i + 1; }

}  // namespace

Octagon::Octagon(std::size_t num_vars) : n_(num_vars), m_(4 * num_vars * num_vars) {
  for (std::size_t u = 0; u < 2 * n_; ++u) at(u, u) = OctBound{0.0, false};
}

void Octagon::add_pair(std::size_t i, int si, std::size_t j, int sj, double c, bool strict) {
  const OctBound b{c, strict};
  if (si > 0 && sj > 0) {  // x_i + x_j <= c
    tighten(neg(i), pos(j), b);
    tighten(neg(j), pos(i), b);
  } else if (si > 0 && sj < 0) {  // x_i - x_j <= c
    tighten(pos(j), pos(i), b);
    tighten(neg(i), neg(j), b);
  } else if (si < 0 && sj > 0) {  // x_j - x_i <= c
    tighten(pos(i), pos(j), b);
    tighten(neg(j), neg(i), b);
  } else {  // -x_i - x_j <= c
    tighten(pos(j), neg(i), b);
    tighten(pos(i), neg(j), b);
  }
}

void Octagon::add_upper(std::size_t i, double c, bool strict) {
  tighten(neg(i), pos(i), OctBound{up_twice(c), strict});
}

void Octagon::add_lower(std::size_t i, double c, bool strict) {
  // x_i >= c  <=>  -x_i <= -c  <=>  val(neg i) - val(pos i) <= -2c.
  tighten(pos(i), neg(i), OctBound{up_twice(-c), strict});
}

void Octagon::close() {
  const std::size_t dim = 2 * n_;
  // Floyd-Warshall over the two-node encoding; every derived path bound is
  // an up-rounded sum, so derivations only ever weaken in real arithmetic.
  for (std::size_t k = 0; k < dim; ++k) {
    for (std::size_t u = 0; u < dim; ++u) {
      const OctBound uk = at(u, k);
      if (uk.c == kInf) continue;
      for (std::size_t v = 0; v < dim; ++v) {
        const OctBound kv = at(k, v);
        if (kv.c == kInf) continue;
        tighten(u, v, OctBound{up_add(uk.c, kv.c), uk.strict || kv.strict});
      }
    }
  }
  // Octagon strengthening: 2(val(v) - val(u)) = (val(v) - val(vbar)) +
  // (val(ubar) - val(u)) <= m[vbar][v] + m[u][ubar].
  for (std::size_t u = 0; u < dim; ++u) {
    const OctBound du = at(u, u ^ 1);
    if (du.c == kInf) continue;
    for (std::size_t v = 0; v < dim; ++v) {
      const OctBound dv = at(v ^ 1, v);
      if (dv.c == kInf) continue;
      tighten(u, v, OctBound{up_add(up_half(du.c), up_half(dv.c)), du.strict || dv.strict});
    }
  }
  for (std::size_t u = 0; u < dim; ++u) {
    const OctBound d = at(u, u);
    if (d.c < 0.0 || (d.c == 0.0 && d.strict)) {
      empty_ = true;
      break;
    }
  }
}

bool Octagon::entails_pair(std::size_t i, int si, std::size_t j, int sj, double c,
                           bool strict) const {
  if (empty_) return true;
  return bound_pair(i, si, j, sj).le(OctBound{c, strict});
}

bool Octagon::entails_upper(std::size_t i, double c, bool strict) const {
  if (empty_) return true;
  return at(neg(i), pos(i)).le(OctBound{down_twice(c), strict});
}

bool Octagon::entails_lower(std::size_t i, double c, bool strict) const {
  if (empty_) return true;
  return at(pos(i), neg(i)).le(OctBound{down_twice(-c), strict});
}

OctBound Octagon::bound_pair(std::size_t i, int si, std::size_t j, int sj) const {
  if (si > 0 && sj > 0) return at(neg(i), pos(j));
  if (si > 0 && sj < 0) return at(pos(j), pos(i));
  if (si < 0 && sj > 0) return at(pos(i), pos(j));
  return at(pos(j), neg(i));
}

OctBound Octagon::bound_upper(std::size_t i) const {
  const OctBound b = at(neg(i), pos(i));
  return OctBound{up_half(b.c), b.strict};
}

}  // namespace evps
