file(REMOVE_RECURSE
  "CMakeFiles/fig9_evolution_volume.dir/bench/fig9_evolution_volume.cpp.o"
  "CMakeFiles/fig9_evolution_volume.dir/bench/fig9_evolution_volume.cpp.o.d"
  "bench/fig9_evolution_volume"
  "bench/fig9_evolution_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_evolution_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
