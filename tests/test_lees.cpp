// Lazy Evaluation Evolving Subscriptions behaviour (Sections IV-B, V-B).
#include <gtest/gtest.h>

#include "evolving/lees_engine.hpp"
#include "test_util.hpp"

namespace evps {
namespace {

using testutil::SimHost;
using testutil::make_sub;
using testutil::match;

SimTime sec(double s) { return SimTime::from_seconds(s); }

struct LeesTest : ::testing::Test {
  Simulator sim;
  SimHost host{sim};
  // matcher_threads pinned: the exact lazy_evaluations counts below assume
  // the K=1 probe order (per-destination early exit is per shard, so an
  // EVPS_MATCHER_THREADS override would change counters, not results).
  EngineConfig cfg{.kind = EngineKind::kLees, .matcher_threads = 1};
  LeesEngine engine{cfg};
};

TEST_F(LeesTest, ExactEvaluationAtPublicationTime) {
  engine.add(make_sub(1, "x >= -3 + t; x <= 3 + t"), NodeId{1}, host);
  // Paper example: x=4 does not match at t=0, matches at t=1.
  EXPECT_TRUE(match(engine, host, parse_publication("x = 4")).empty());
  sim.run_until(sec(1));
  EXPECT_EQ(match(engine, host, parse_publication("x = 4")).size(), 1u);
  sim.run_until(sec(7.001));  // window is now [4.001, 10.001]
  EXPECT_TRUE(match(engine, host, parse_publication("x = 4")).empty());
  EXPECT_EQ(match(engine, host, parse_publication("x = 10")).size(), 1u);
}

TEST_F(LeesTest, NoEvolutionTimersNeeded) {
  engine.add(make_sub(1, "x >= t"), NodeId{1}, host);
  EXPECT_TRUE(sim.empty());  // lazy engines schedule nothing
}

TEST_F(LeesTest, SplitSubscriptionRequiresBothParts) {
  engine.add(make_sub(1, "symbol = 'IBM'; price <= 10 + t"), NodeId{1}, host);
  EXPECT_EQ(engine.leme_size(), 1u);
  // Static part fails -> no match even though the evolving part matches.
  EXPECT_TRUE(match(engine, host, parse_publication("symbol = 'MSFT'; price = 5")).empty());
  // Evolving part fails -> no match.
  EXPECT_TRUE(match(engine, host, parse_publication("symbol = 'IBM'; price = 15")).empty());
  EXPECT_EQ(match(engine, host, parse_publication("symbol = 'IBM'; price = 5")).size(), 1u);
}

TEST_F(LeesTest, StaticOnlySubscriptionDecidedByMatcher) {
  engine.add(make_sub(1, "x > 0"), NodeId{1}, host);
  EXPECT_EQ(engine.leme_size(), 0u);
  EXPECT_EQ(match(engine, host, parse_publication("x = 1")).size(), 1u);
}

TEST_F(LeesTest, MissingAttributeFailsEvolvingPart) {
  engine.add(make_sub(1, "x >= t; y >= t"), NodeId{1}, host);
  EXPECT_TRUE(match(engine, host, parse_publication("x = 100")).empty());
  EXPECT_EQ(match(engine, host, parse_publication("x = 100; y = 100")).size(), 1u);
}

TEST_F(LeesTest, EarlyExitPerDestination) {
  // Two fully-evolving subscriptions for the same destination: once the
  // first matches, the second must not be evaluated.
  engine.add(make_sub(1, "x >= t"), NodeId{7}, host);
  engine.add(make_sub(2, "x >= t - 1"), NodeId{7}, host);
  const auto dests = match(engine, host, parse_publication("x = 5"));
  EXPECT_EQ(dests, std::vector<NodeId>{NodeId{7}});
  EXPECT_EQ(engine.costs().lazy_evaluations, 1u);
}

TEST_F(LeesTest, NoEarlyExitAcrossDestinations) {
  engine.add(make_sub(1, "x >= t"), NodeId{7}, host);
  engine.add(make_sub(2, "x >= t"), NodeId{8}, host);
  const auto dests = match(engine, host, parse_publication("x = 5"));
  EXPECT_EQ(dests, (std::vector<NodeId>{NodeId{7}, NodeId{8}}));
  EXPECT_EQ(engine.costs().lazy_evaluations, 2u);
}

TEST_F(LeesTest, NonMatchingSubsAllEvaluated) {
  for (std::uint64_t i = 1; i <= 10; ++i) {
    engine.add(make_sub(i, "x <= -1 - t"), NodeId{i}, host);  // never matches x=5
  }
  EXPECT_TRUE(match(engine, host, parse_publication("x = 5")).empty());
  EXPECT_EQ(engine.costs().lazy_evaluations, 10u);  // exhaustive scan
}

TEST_F(LeesTest, StaticShortcutSkipsEvolvingEvaluation) {
  engine.add(make_sub(1, "symbol = 'IBM'; price <= 10 + t"), NodeId{1}, host);
  (void)match(engine, host, parse_publication("symbol = 'MSFT'; price = 5"));
  // The evolving part must not have been evaluated (M1 miss short-circuits).
  EXPECT_EQ(engine.costs().lazy_evaluations, 0u);
}

TEST_F(LeesTest, DestinationSettledByStaticSubSkipsLazyWork) {
  engine.add(make_sub(1, "x > 0"), NodeId{7}, host);          // static
  engine.add(make_sub(2, "x >= t"), NodeId{7}, host);         // evolving, same dest
  const auto dests = match(engine, host, parse_publication("x = 5"));
  EXPECT_EQ(dests, std::vector<NodeId>{NodeId{7}});
  EXPECT_EQ(engine.costs().lazy_evaluations, 0u);
}

TEST_F(LeesTest, RemoveEvolvingSubscription) {
  engine.add(make_sub(1, "x >= t"), NodeId{1}, host);
  engine.add(make_sub(2, "symbol = 'A'; x >= t"), NodeId{2}, host);
  EXPECT_EQ(engine.leme_size(), 2u);
  EXPECT_TRUE(engine.remove(SubscriptionId{1}, host));
  EXPECT_TRUE(engine.remove(SubscriptionId{2}, host));
  EXPECT_EQ(engine.leme_size(), 0u);
  EXPECT_TRUE(match(engine, host, parse_publication("symbol = 'A'; x = 100")).empty());
}

TEST_F(LeesTest, DiscreteVariableReadAtPublicationTime) {
  host.set_variable("v", 1.0);
  engine.add(make_sub(1, "x <= 10 * v"), NodeId{1}, host);
  EXPECT_EQ(match(engine, host, parse_publication("x = 5")).size(), 1u);
  host.set_variable("v", 0.1);
  // No MEI lag: the very next publication sees the new value.
  EXPECT_TRUE(match(engine, host, parse_publication("x = 5")).empty());
}

TEST_F(LeesTest, SnapshotOverridesLocalState) {
  host.set_variable("v", 0.1);
  engine.add(make_sub(1, "x <= 10 * v"), NodeId{1}, host);
  Publication pub = parse_publication("x = 5");
  pub.set_entry_time(sim.now());
  EXPECT_TRUE(match(engine, host, pub).empty());  // local v = 0.1 -> x <= 1
  const VariableSnapshot snapshot = make_variable_snapshot({{"v", 1.0}});
  EXPECT_EQ(match(engine, host, pub, &snapshot).size(), 1u);  // snapshot v = 1
}

TEST_F(LeesTest, LazyCostChargedPerPublication) {
  engine.add(make_sub(1, "x >= t"), NodeId{1}, host);
  for (int i = 0; i < 5; ++i) (void)match(engine, host, parse_publication("x = 100"));
  EXPECT_EQ(engine.costs().lazy_eval.count(), 5u);
  EXPECT_EQ(engine.costs().lazy_evaluations, 5u);
}

}  // namespace
}  // namespace evps
