file(REMOVE_RECURSE
  "libevps_sim.a"
)
