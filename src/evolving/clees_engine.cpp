#include "evolving/clees_engine.hpp"

#include "analysis/analyzer.hpp"

namespace evps {

void CleesEngine::do_add(const Installed& entry, EngineHost& host) {
  const auto& sub = *entry.sub;
  if (!sub.is_evolving()) {
    matcher_add_static(entry);
    return;
  }
  const auto static_part = sub.static_predicates();
  auto part = storage_.make_part(entry.sub, !static_part.empty());
  if (config_.analysis_cache_windows) {
    // Derive the cache-window class once, at install time, instead of
    // re-deriving bounds per publication: provably-constant bounds never
    // need re-materialisation, t-independent bounds only when a registry
    // variable changed.
    const SubscriptionAnalysis analysis = analyze_subscription(sub, host.variables());
    part.extra.constant_bounds = analysis.verdict == Verdict::kConstant;
    part.extra.time_invariant = !analysis.time_dependent;
  }
  if (part.has_static_part) matcher_->add(sub.id(), static_part);
  storage_.add(std::move(part), entry.dest);
}

void CleesEngine::do_remove(const Installed& entry, EngineHost& /*host*/) {
  const auto& sub = *entry.sub;
  if (!sub.is_evolving()) {
    matcher_remove_static(sub.id());
    return;
  }
  if (!sub.is_fully_evolving()) matcher_->remove(sub.id());
  storage_.remove(sub.id(), entry.dest);
}

void CleesEngine::do_match(const Publication& pub, const VariableSnapshot* snapshot,
                           EngineHost& host, std::vector<NodeId>& destinations) {
  m1_.clear();
  {
    const ScopedTimer timer(costs_.match);
    matcher_->match(pub, m1_);
  }
  storage_.begin_match();
  for (const auto id : m1_) {
    if (storage_.note_m1(id)) continue;  // static half of a split subscription
    const Installed* entry = installed_entry(id);
    if (entry == nullptr) continue;
    destinations.push_back(entry->dest);
    storage_.mark_done(entry->dest);
  }

  const ScopedTimer timer(costs_.lazy_eval);
  const SimTime now = host.now();
  EvalScope& scope = publication_scope(pub, snapshot, host.variables(), now);
  for (auto& [dest, group] : storage_.groups()) {
    if (storage_.done(group)) continue;
    for (auto& part : group.parts) {
      if (part.has_static_part && !storage_.m1_hit(part)) continue;

      bool matched = false;
      // Snapshot-consistency mode bypasses the cache: cached versions are
      // anchored at broker-local time, which a piggybacked snapshot
      // invalidates (the hybrid is future work in the paper).
      bool valid = snapshot == nullptr && now < part.extra.expires;
      if (!valid && snapshot == nullptr && part.extra.populated) {
        // Analysis-sized windows: past TT, a version is still *exact* (not
        // merely tolerated staleness) when re-materialisation would provably
        // reproduce it bit-for-bit.
        valid = part.extra.constant_bounds ||
                (part.extra.time_invariant &&
                 host.variables().global_version() == part.extra.seen_version);
      }
      if (valid) {
        ++costs_.cache_hits;
        matched = cached_bounds_match(part.preds, part.extra.bounds, pub);
      } else {
        ++costs_.cache_misses;
        ++costs_.lazy_evaluations;
        scope.set_epoch(part.sub->epoch());
        auto& bounds = snapshot == nullptr ? part.extra.bounds : snapshot_bounds_;
        materialize_bounds(part.preds, scope, eval_stack_, bounds);
        matched = cached_bounds_match(part.preds, bounds, pub);
        if (snapshot == nullptr) {
          part.extra.expires = now + effective_tt(*part.sub);
          part.extra.populated = true;
          part.extra.seen_version = host.variables().global_version();
        }
      }
      if (matched) {
        destinations.push_back(dest);
        break;  // early exit: destination settled
      }
    }
  }
}

}  // namespace evps
