#include "metrics/report.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace evps {

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) widths[i] = std::max(widths[i], row[i].size());
  }
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << (i == 0 ? "| " : " | ") << std::left << std::setw(static_cast<int>(widths[i]))
         << cells[i];
    }
    os << " |\n";
  };
  print_row(headers_);
  os << "|";
  for (const auto w : widths) os << std::string(w + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::pct(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

void print_banner(std::string_view title, std::ostream& os) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace evps
