#include "common/thread_pool.hpp"

#include <algorithm>

namespace evps {

namespace {

// Set while a thread is inside a task (worker or the caller draining its own
// job), so a nested run() on the same thread executes inline instead of
// deadlocking on the one-job-at-a-time serialisation.
thread_local bool t_in_pool_task = false;

struct InTaskGuard {
  // Save/restore rather than set/clear: a nested inline run() creates its
  // own guard, and clearing on its exit would let a *later* nested call from
  // the still-running outer task take the full dispatch path and deadlock on
  // the job serialisation.
  bool prev = t_in_pool_task;
  InTaskGuard() { t_in_pool_task = true; }
  ~InTaskGuard() { t_in_pool_task = prev; }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_.store(true, std::memory_order_relaxed);
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::execute(Task task, void* ctx, std::size_t n) {
  InTaskGuard guard;
  for (std::size_t i = 0; i < n; ++i) task(ctx, i);
}

void ThreadPool::run(std::size_t n, Task task, void* ctx) {
  if (n == 0) return;
  if (n == 1 || workers_.empty() || t_in_pool_task) {
    execute(task, ctx, n);
    return;
  }

  std::lock_guard<std::mutex> job_lock(run_mu_);

  {
    // Publish the job. A worker that woke late for the *previous* job may
    // still be registered in its claim loop (its claims all fail, but it
    // reads next_/done_), so wait for active_ == 0 before recycling the
    // counters. Workers register and deregister under mu_, which makes this
    // wait race-free.
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return active_.load(std::memory_order_acquire) == 0; });
    task_ = task;
    ctx_ = ctx;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    done_.store(0, std::memory_order_relaxed);
    gen_.fetch_add(1, std::memory_order_release);
  }
  work_cv_.notify_all();

  // The caller participates: claim indexes alongside the workers.
  {
    InTaskGuard guard;
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        task(ctx, i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!error_) error_ = std::current_exception();
      }
      done_.fetch_add(1, std::memory_order_acq_rel);
    }
  }

  // Wait for the workers to drain the rest AND step out of the claim loop
  // (active_ == 0) so the next job may safely reset the counters. Spin
  // briefly first: per-publication dispatches finish in microseconds and a
  // futex sleep would dominate.
  auto finished = [&] {
    return done_.load(std::memory_order_acquire) == n &&
           active_.load(std::memory_order_acquire) == 0;
  };
  for (int spin = 0; spin < 8192 && !finished(); ++spin) {
    std::this_thread::yield();
  }
  if (!finished()) {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, finished);
  }

  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(mu_);
    err = error_;
    error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_gen = 0;
  for (;;) {
    // Spin briefly for the next job before sleeping on the condvar.
    for (int spin = 0; spin < 4096; ++spin) {
      if (gen_.load(std::memory_order_acquire) != seen_gen ||
          stopping_.load(std::memory_order_relaxed)) {
        break;
      }
      std::this_thread::yield();
    }

    Task task;
    void* ctx;
    std::size_t n;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return gen_.load(std::memory_order_relaxed) != seen_gen ||
               stopping_.load(std::memory_order_relaxed);
      });
      if (stopping_.load(std::memory_order_relaxed)) return;
      seen_gen = gen_.load(std::memory_order_relaxed);
      task = task_;
      ctx = ctx_;
      n = n_;
      // Registering under mu_ before the first claim means run() cannot
      // observe active_ == 0 and recycle the counters while this worker is
      // still inside the claim loop of the old job.
      active_.fetch_add(1, std::memory_order_relaxed);
    }

    {
      InTaskGuard guard;
      for (;;) {
        const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        try {
          task(ctx, i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mu_);
          if (!error_) error_ = std::current_exception();
        }
        done_.fetch_add(1, std::memory_order_acq_rel);
      }
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      active_.fetch_sub(1, std::memory_order_release);
    }
    done_cv_.notify_all();
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool([] {
    const unsigned hw = std::thread::hardware_concurrency();
    const std::size_t cap = std::min<std::size_t>(hw == 0 ? 1 : hw, 16);
    return cap > 1 ? cap - 1 : std::size_t{1};
  }());
  return pool;
}

}  // namespace evps
