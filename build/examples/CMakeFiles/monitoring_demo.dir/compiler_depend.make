# Empty compiler generated dependencies file for monitoring_demo.
# This may be replaced when dependencies are built.
