// Figure 10(c): visibility-based game experiment (Section VI-D).
//
// 250 characters move while the in-game visibility drops 100% -> 50% ->
// 100% -> 50%, changing every 3 s. Evolving subscriptions track visibility
// through the broker-side variable `v`; the non-evolving baseline must be
// told the visibility through weather notifications and resubscribe — and
// in the final 30 s the notifications stop, so the baseline keeps matching
// with its stale area while evolving subscriptions react.
#include <iostream>

#include "metrics/report.hpp"
#include "workloads/game.hpp"

namespace {

using namespace evps;

GameConfig make_config(SystemKind system) {
  GameConfig cfg;
  cfg.system = system;
  cfg.seed = 7;
  cfg.characters = 250;
  cfg.clients = 250;  // one character per client, as in the paper's setup
  // Uniform event positions (trace-like), so the match volume tracks the
  // total covered area: player-position hotspots would self-match at any
  // visibility and mask the v^2 shrinkage the figure demonstrates.
  cfg.hotspot_fraction = 0.0;
  cfg.pub_rate = 400.0;
  cfg.use_visibility = true;
  cfg.visibility_step = Duration::seconds(3.0);
  cfg.blackout_tail = Duration::seconds(30.0);
  cfg.duration = SimTime::from_seconds(120.0);
  return cfg;
}

}  // namespace

int main() {
  std::cout << "Reproduction of Figure 10(c): matching publications under a\n"
               "changing visibility schedule (120 s, blackout in the last 30 s)\n";

  GameExperiment evolving(make_config(SystemKind::kLees));
  GameExperiment baseline(make_config(SystemKind::kResub));
  evolving.run();
  baseline.run();

  const auto& ev = evolving.deliveries_per_second();
  const auto& bl = baseline.deliveries_per_second();
  Table t{{"t (s)", "visibility", "evolving (deliveries/s)", "non-evolving (deliveries/s)"}};
  for (std::size_t i = 0; i < ev.size() && i < bl.size(); i += 5) {
    t.add_row({std::to_string(i + 1),
               Table::pct(evolving.visibility_at(SimTime::from_seconds(static_cast<double>(i))),
                          0),
               std::to_string(ev[i]), std::to_string(bl[i])});
  }
  t.print();

  const auto window_mean = [](const std::vector<std::uint64_t>& s, std::size_t from,
                              std::size_t to) {
    double total = 0;
    std::size_t n = 0;
    for (std::size_t i = from; i < to && i < s.size(); ++i, ++n) {
      total += static_cast<double>(s[i]);
    }
    return n == 0 ? 0.0 : total / static_cast<double>(n);
  };
  const double ev_mid = window_mean(ev, 55, 62);
  const double ev_start = window_mean(ev, 2, 10);
  std::cout << "\nvisibility 50% vs 100% match volume (evolving): "
            << Table::pct(ev_mid / ev_start, 0)
            << " (paper: area covers 1/4, matches drop ~75%)\n";

  const double ev_tail = window_mean(ev, 105, 120);
  const double bl_tail = window_mean(bl, 105, 120);
  const double ev_peak = window_mean(ev, 80, 88);
  const double bl_peak = window_mean(bl, 80, 88);
  std::cout << "blackout reaction (tail/peak ratio): evolving "
            << Table::pct(ev_tail / ev_peak, 0) << ", non-evolving "
            << Table::pct(bl_tail / bl_peak, 0)
            << " (paper: evolving reacts to the drop, non-evolving does not)\n";

  std::cout << "subscription messages received: evolving " << evolving.subscription_msgs()
            << ", non-evolving " << baseline.subscription_msgs() << " ("
            << Table::fmt(static_cast<double>(baseline.subscription_msgs()) /
                              static_cast<double>(evolving.subscription_msgs()),
                          1)
            << "x; paper: non-evolving sends ~10x more)\n";
  return 0;
}
