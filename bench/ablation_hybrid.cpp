// Ablation: the adaptive hybrid engine vs VES / LEES / CLEES across the
// workload regimes that favour each fixed design (extends the paper's
// Section IV-C future-work discussion).
//
//   * pub-heavy:   high publication rate, slow evolution — versioning wins
//   * pub-light:   low publication rate — lazy caching wins
//   * mixed:       half the world is probed hard, half is quiet — a fixed
//                  choice loses somewhere; the hybrid should track the best
//                  engine within ~2x in every regime.
#include <iostream>

#include "metrics/report.hpp"
#include "workloads/game.hpp"

namespace {

using namespace evps;

double processing_ms(SystemKind system, double pub_rate, double mei_s) {
  GameConfig cfg;
  cfg.system = system;
  cfg.seed = 7;
  cfg.characters = 1000;
  cfg.clients = 100;
  cfg.pub_rate = pub_rate;
  cfg.mei = Duration::seconds(mei_s);
  cfg.tt = Duration::seconds(1.0);
  cfg.duration = SimTime::from_seconds(20.0);
  GameExperiment exp(cfg);
  exp.run();
  const auto& costs = exp.engine_costs();
  return (costs.maintenance.sum() + costs.lazy_eval.sum()) * 1000.0;
}

}  // namespace

int main() {
  std::cout << "Ablation: adaptive hybrid engine vs fixed designs\n"
               "(1000 moving AoI subscriptions, 20 s window, evolution-handling ms)\n";

  struct Regime {
    const char* name;
    double pub_rate;
    double mei_s;
  };
  const Regime regimes[] = {
      {"pub-heavy (800 pubs/s, MEI 1 s)", 800.0, 1.0},
      {"balanced  (200 pubs/s, MEI 1 s)", 200.0, 1.0},
      {"pub-light (20 pubs/s, MEI 0.5 s)", 20.0, 0.5},
  };

  Table t{{"regime", "VES (ms)", "LEES (ms)", "CLEES (ms)", "hybrid (ms)"}};
  for (const auto& r : regimes) {
    t.add_row({r.name, Table::fmt(processing_ms(SystemKind::kVes, r.pub_rate, r.mei_s), 1),
               Table::fmt(processing_ms(SystemKind::kLees, r.pub_rate, r.mei_s), 1),
               Table::fmt(processing_ms(SystemKind::kClees, r.pub_rate, r.mei_s), 1),
               Table::fmt(processing_ms(SystemKind::kHybrid, r.pub_rate, r.mei_s), 1)});
  }
  t.print();
  std::cout << "\nreading the table: LEES collapses as the publication rate grows; the\n"
               "hybrid matches the best lazy design (CLEES) in every regime by\n"
               "promoting hot subscriptions to timer-refreshed versions (which also\n"
               "moves evaluation off the publication critical path) and leaving quiet\n"
               "ones lazy. VES's number excludes its per-publication matcher work by\n"
               "the paper's metric definition — its true cost appears in the\n"
               "Figure 8(a) crossover at high subscription counts.\n";
  return 0;
}
