// Differential soundness sweep for the relational covering refinement.
//
// Mirrors tests/test_covering_soundness.cpp but biases generation towards
// the octagon domain's territory: variable-anchored predicates
// (`attr op var + c`), shared-centre moving zones, and syntactically
// identical evolving bounds. Every kCovers verdict — per-attribute or
// relational — is checked against concrete evaluation over sampled variable
// assignments, evaluation instants and *distinct epochs per subscription*
// (the `t` shortcut exclusion must survive differing subscription ages),
// with numeric, boundary (exact anchors and 1-ulp neighbours), ±inf, NaN,
// string and missing-attribute probes. Zero false kCovers over the sweep.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/covering.hpp"
#include "common/rng.hpp"
#include "message/codec.hpp"

namespace evps {
namespace {

SimTime sec(double s) { return SimTime::from_seconds(s); }

constexpr int kVarCount = 2;
const char* const kVarNames[] = {"rs_v0", "rs_v1"};
const char* const kAttrs[] = {"rsx", "rsy"};

struct VarDecl {
  double lo = 0;
  double hi = 0;
  bool bound = false;
};

std::string num(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// One random predicate, biased towards variable-anchored bounds. Collects
/// the numeric offsets used so probes can aim at the induced boundaries.
std::string random_pred(Rng& rng, std::vector<double>& offsets) {
  static const char* const kOps[] = {"<", "<=", ">", ">=", "=", "!="};
  const char* attr = kAttrs[rng.uniform_int(0, 1)];
  const char* op = kOps[rng.uniform_int(0, 5)];
  const double roll = rng.uniform();
  std::ostringstream os;
  if (roll < 0.1) {  // string constant
    const char* sop = rng.bernoulli(0.5) ? "=" : "!=";
    os << attr << " " << sop << " 'rs_tag" << rng.uniform_int(0, 2) << "'";
    return os.str();
  }
  if (roll < 0.3) {  // plain numeric constant
    const double c = rng.bernoulli(0.4) ? std::floor(rng.uniform(-20.0, 20.0))
                                        : rng.uniform(-20.0, 20.0);
    offsets.push_back(c);
    os << attr << " " << op << " " << num(c);
    return os.str();
  }
  // Variable-anchored bound: var + c, var - c, t-anchored, or min-wrapped.
  const std::string var =
      rng.bernoulli(0.2) ? "t" : kVarNames[rng.uniform_int(0, kVarCount - 1)];
  const double c = rng.bernoulli(0.5) ? std::floor(rng.uniform(-10.0, 10.0))
                                      : rng.uniform(-10.0, 10.0);
  offsets.push_back(c);
  if (roll < 0.4) {
    os << attr << " " << op << " min(" << var << " + " << num(c) << ", "
       << num(rng.uniform(-15.0, 15.0)) << ")";
  } else if (rng.bernoulli(0.5)) {
    os << attr << " " << op << " " << var << " + " << num(c);
  } else {
    os << attr << " " << op << " " << var << " - " << num(c);
  }
  return os.str();
}

/// Shared-centre moving-zone pair: A is a half-width-`wa` zone around
/// var + c, B a half-width-`wb` zone around the same anchor — the shape the
/// per-attribute check can never prove but the octagon can (when wa >= wb).
void moving_zone_pair(Rng& rng, std::string& a_text, std::string& b_text,
                      std::vector<double>& offsets) {
  const char* attr = kAttrs[rng.uniform_int(0, 1)];
  const std::string var = kVarNames[rng.uniform_int(0, kVarCount - 1)];
  const double c = std::floor(rng.uniform(-5.0, 5.0));
  const double wa = std::floor(rng.uniform(1.0, 60.0));
  const double wb = std::floor(rng.uniform(1.0, 60.0));  // sometimes > wa
  offsets.push_back(c + wa);
  offsets.push_back(c - wa);
  offsets.push_back(c + wb);
  offsets.push_back(c - wb);
  std::ostringstream a, b;
  a << attr << " >= " << var << " + " << num(c - wa) << "; " << attr << " <= " << var << " + "
    << num(c + wa);
  b << attr << " >= " << var << " + " << num(c - wb) << "; " << attr << " <= " << var << " + "
    << num(c + wb);
  a_text = a.str();
  b_text = b.str();
}

bool matches_sub(const Subscription& sub, const Publication& pub, const EvalScope& scope) {
  for (const Predicate& pred : sub.predicates()) {
    const Value* v = pub.get(pred.attribute());
    if (v == nullptr || !pred.matches(*v, scope)) return false;
  }
  return true;
}

TEST(RelationalSoundness, NoFalseKCoversOverSeededSweep) {
  std::uint64_t covered_pairs = 0;
  std::uint64_t relational_only = 0;  // proved by the octagon, not per-attr
  std::uint64_t unknown_pairs = 0;
  std::uint64_t probes = 0;

  for (std::uint64_t seed = 1; seed <= 1500; ++seed) {
    Rng rng{seed};
    VariableRegistry reg;
    VarDecl decls[kVarCount];
    for (int i = 0; i < kVarCount; ++i) {
      decls[i].lo = std::floor(rng.uniform(-30.0, 0.0));
      decls[i].hi = decls[i].lo + std::floor(rng.uniform(0.0, 60.0));
      reg.declare_range(kVarNames[i], decls[i].lo, decls[i].hi);
      decls[i].bound = rng.bernoulli(0.85);
      if (decls[i].bound) {
        reg.set(kVarNames[i], rng.uniform(decls[i].lo, decls[i].hi), SimTime::zero());
      }
    }

    std::vector<double> offsets;
    std::string a_text;
    std::string b_text;
    const double mode = rng.uniform();
    if (mode < 0.35) {
      moving_zone_pair(rng, a_text, b_text, offsets);
    } else if (mode < 0.75) {
      // B starts as a copy of A plus extra predicates: exercises both the
      // syntactic shortcut (identical programs) and entailment.
      const int npreds = static_cast<int>(rng.uniform_int(1, 2));
      for (int i = 0; i < npreds; ++i) {
        if (i != 0) a_text += "; ";
        a_text += random_pred(rng, offsets);
      }
      b_text = a_text;
      const int extra = static_cast<int>(rng.uniform_int(0, 2));
      for (int i = 0; i < extra; ++i) b_text += "; " + random_pred(rng, offsets);
    } else {
      for (int i = 0; i < static_cast<int>(rng.uniform_int(1, 2)); ++i) {
        if (i != 0) a_text += "; ";
        a_text += random_pred(rng, offsets);
      }
      for (int i = 0; i < static_cast<int>(rng.uniform_int(1, 3)); ++i) {
        if (i != 0) b_text += "; ";
        b_text += random_pred(rng, offsets);
      }
    }

    Subscription a = parse_subscription("[tt=0.5] " + a_text);
    a.set_id(SubscriptionId{seed * 2});
    Subscription b = parse_subscription("[tt=0.5] " + b_text);
    b.set_id(SubscriptionId{seed * 2 + 1});

    const CoverVerdict verdict = covers(a, b, reg, /*relational=*/true);
    if (verdict == CoverVerdict::kUnknown) {
      ++unknown_pairs;
      continue;
    }
    ++covered_pairs;
    if (covers(a, b, reg, /*relational=*/false) == CoverVerdict::kUnknown) ++relational_only;

    // A and B age from different epochs: A subscribed at 0, B half a second
    // later. A kCovers verdict must hold at every instant regardless.
    EvalScope scope_a;
    EvalScope scope_b;
    double clock = 0.6;
    for (int round = 0; round < 5; ++round) {
      clock += rng.uniform(0.1, 2.0);
      for (int i = 0; i < kVarCount; ++i) {
        if (!decls[i].bound) continue;
        const double v = rng.bernoulli(0.35)
                             ? (rng.bernoulli(0.5) ? decls[i].lo : decls[i].hi)
                             : rng.uniform(decls[i].lo, decls[i].hi);
        reg.set(kVarNames[i], v, sec(clock));
      }
      const SimTime now = sec(clock + rng.uniform(0.0, 0.5));
      scope_a.rebind(&reg, now);
      scope_a.set_epoch(SimTime::zero());
      scope_b.rebind(&reg, now);
      scope_b.set_epoch(sec(0.5));

      // Probe values: random, boundary anchors (current variable value plus
      // each collected offset, and 1-ulp neighbours), ±inf, NaN, strings.
      std::vector<Value> probe_values;
      probe_values.emplace_back(rng.uniform(-80.0, 80.0));
      probe_values.emplace_back(std::numeric_limits<double>::infinity());
      probe_values.emplace_back(-std::numeric_limits<double>::infinity());
      probe_values.emplace_back(std::numeric_limits<double>::quiet_NaN());
      probe_values.emplace_back(std::string("rs_tag") + std::to_string(rng.uniform_int(0, 2)));
      std::vector<double> anchors = offsets;
      for (int i = 0; i < kVarCount; ++i) {
        if (const auto v = reg.get_at(kVarNames[i], now)) {
          for (const double off : offsets) anchors.push_back(*v + off);
        }
      }
      for (const double anchor : anchors) {
        probe_values.emplace_back(anchor);
        probe_values.emplace_back(std::nextafter(anchor, 1e300));
        probe_values.emplace_back(std::nextafter(anchor, -1e300));
      }

      for (const Value& px : probe_values) {
        for (int py_mode = 0; py_mode < 3; ++py_mode) {
          Publication pub;
          pub.set(kAttrs[0], px);
          if (py_mode == 0) {
            pub.set(kAttrs[1], probe_values[static_cast<std::size_t>(rng.uniform_int(
                                   0, static_cast<std::int64_t>(probe_values.size()) - 1))]);
          } else if (py_mode == 1) {
            pub.set(kAttrs[1], Value{rng.uniform(-80.0, 80.0)});
          }
          ++probes;
          if (matches_sub(b, pub, scope_b)) {
            ASSERT_TRUE(matches_sub(a, pub, scope_a))
                << "seed " << seed << " t=" << clock << ": publication matches covered sub\n"
                << "  A: " << a_text << "\n  B: " << b_text << "\n  pub: " << serialize(pub)
                << (relational_only != 0U ? "\n  (relational-only verdict)" : "");
          }
        }
      }
    }
  }

  // The sweep must genuinely exercise the refinement, not just re-run the
  // per-attribute analysis.
  EXPECT_GE(covered_pairs, 150u);
  EXPECT_GE(relational_only, 60u);
  EXPECT_GE(unknown_pairs, 150u);
  EXPECT_GE(probes, 100000u);
}

}  // namespace
}  // namespace evps
