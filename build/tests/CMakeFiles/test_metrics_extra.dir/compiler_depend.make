# Empty compiler generated dependencies file for test_metrics_extra.
# This may be replaced when dependencies are built.
