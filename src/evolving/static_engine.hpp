// Plain content-based engine: the resubscription baseline.
//
// Evolving subscriptions are rejected; clients must unsubscribe and
// resubscribe to change interests (Section I).
#pragma once

#include "evolving/engine.hpp"

namespace evps {

class StaticEngine : public BrokerEngine {
 public:
  explicit StaticEngine(const EngineConfig& config) : BrokerEngine(config) {}

 protected:
  void do_add(const Installed& entry, EngineHost& host) override;
  void do_remove(const Installed& entry, EngineHost& host) override;
  void do_match(const Publication& pub, const VariableSnapshot* snapshot, EngineHost& host,
                std::vector<NodeId>& destinations) override;
  void do_match_batch(std::span<const Publication* const> pubs, const VariableSnapshot* snapshot,
                      EngineHost& host, std::vector<std::vector<NodeId>>& destinations) override;
};

}  // namespace evps
