file(REMOVE_RECURSE
  "CMakeFiles/evps_expr.dir/ast.cpp.o"
  "CMakeFiles/evps_expr.dir/ast.cpp.o.d"
  "CMakeFiles/evps_expr.dir/parser.cpp.o"
  "CMakeFiles/evps_expr.dir/parser.cpp.o.d"
  "CMakeFiles/evps_expr.dir/variable_registry.cpp.o"
  "CMakeFiles/evps_expr.dir/variable_registry.cpp.o.d"
  "libevps_expr.a"
  "libevps_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evps_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
