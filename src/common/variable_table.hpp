// Process-wide evolution-variable interning.
//
// Evolving predicates reference evolution variables by name in the wire
// format and the AST, but every per-publication evaluation (LEES/CLEES lazy
// evaluation, VES version refresh) resolves those names against the broker's
// VariableRegistry. Interning each distinct variable name once into a dense
// `VarId` lets the evaluation hot path work entirely on integers: compiled
// expression programs carry pre-resolved VarIds, registries store histories
// in a flat vector, and evaluation scopes are dense slot arrays.
//
// Like AttributeTable, the table only ever grows (variable universes are a
// handful of names per workload), so ids are valid for the life of the
// process and can be embedded freely in compiled programs.
#pragma once

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace evps {

/// Dense interned evolution-variable id. Sequential from 0 in interning
/// order.
using VarId = std::uint32_t;

inline constexpr VarId kInvalidVarId = ~VarId{0};

class VariableTable {
 public:
  /// The process-wide table shared by registries, scopes and compiled
  /// expression programs.
  [[nodiscard]] static VariableTable& instance();

  VariableTable() = default;
  VariableTable(const VariableTable&) = delete;
  VariableTable& operator=(const VariableTable&) = delete;

  /// Id of `name`, interning it on first sight. Thread-safe.
  [[nodiscard]] VarId intern(std::string_view name);

  /// Id of `name`, or kInvalidVarId if it has never been interned.
  [[nodiscard]] VarId find(std::string_view name) const;

  /// Name of an interned id. `id` must come from this table.
  [[nodiscard]] const std::string& name(VarId id) const;

  /// Number of distinct names interned so far.
  [[nodiscard]] std::size_t size() const;

 private:
  struct StringHash {
    using is_transparent = void;
    [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, VarId, StringHash, std::equal_to<>> ids_;
  std::deque<std::string> names_;  // stable addresses; index == VarId
};

/// Interned id of the reserved continuous variable `t` (elapsed seconds
/// since the owning subscription was installed).
[[nodiscard]] VarId elapsed_time_var_id();

}  // namespace evps
