// Unit tests for the relational (octagon) refinement layer:
//
//   * Octagon — closure transitivity, strengthening, strict-cycle
//     infeasibility, entailment strictness;
//   * eval_relational — certified diff/sum bounds through the transfer pass;
//   * covers_relational — cross-attribute covering the per-attribute shapes
//     cannot prove (moving AoIs, syntactically identical evolving bounds);
//   * analyzer verdicts — relationally-unsatisfiable rejection and
//     relationally-redundant flagging, and their severity ordering;
//   * the 1-ulp fail-closed regression — exact endpoint arithmetic keeps
//     `x <= v + 1` provably covering `x <= 5` for v in [0, 4].
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "analysis/analyzer.hpp"
#include "analysis/covering.hpp"
#include "analysis/covering_index.hpp"
#include "analysis/octagon.hpp"
#include "analysis/relational.hpp"
#include "common/variable_table.hpp"
#include "message/codec.hpp"

namespace evps {
namespace {

TEST(Octagon, ClosureDerivesTransitiveDifferenceBounds) {
  // x0 - x1 <= 1, x1 - x2 <= 2  =>  x0 - x2 <= 3.
  Octagon oct(3);
  oct.add_pair(0, +1, 1, -1, 1.0, false);
  oct.add_pair(1, +1, 2, -1, 2.0, false);
  oct.close();
  EXPECT_FALSE(oct.unsatisfiable());
  EXPECT_TRUE(oct.entails_pair(0, +1, 2, -1, 3.0, false));
  EXPECT_TRUE(oct.entails_pair(0, +1, 2, -1, 3.5, false));
  EXPECT_FALSE(oct.entails_pair(0, +1, 2, -1, 2.9, false));
  // Nothing is known about the reverse direction.
  EXPECT_FALSE(oct.entails_pair(2, +1, 0, -1, 100.0, false));
}

TEST(Octagon, UnaryBoundPropagatesThroughPairs) {
  // x0 <= 5 and x1 - x0 <= 0  =>  x1 <= 5.
  Octagon oct(2);
  oct.add_upper(0, 5.0, false);
  oct.add_pair(1, +1, 0, -1, 0.0, false);
  oct.close();
  EXPECT_TRUE(oct.entails_upper(1, 5.0, false));
  EXPECT_FALSE(oct.entails_upper(1, 5.0, true));  // nothing strict anywhere
  EXPECT_FALSE(oct.entails_upper(1, 4.0, false));
}

TEST(Octagon, ContradictoryDifferenceIsUnsatisfiable) {
  // x0 - x1 <= 0 and x1 - x0 <= -10 (i.e. x0 >= x1 + 10).
  Octagon oct(2);
  oct.add_pair(0, +1, 1, -1, 0.0, false);
  oct.add_pair(0, -1, 1, +1, -10.0, false);
  oct.close();
  EXPECT_TRUE(oct.unsatisfiable());
}

TEST(Octagon, StrictZeroCycleIsUnsatisfiable) {
  // x0 < 5 and x0 >= 5: feasible without strictness, infeasible with it.
  Octagon strict(1);
  strict.add_upper(0, 5.0, true);
  strict.add_lower(0, 5.0, false);
  strict.close();
  EXPECT_TRUE(strict.unsatisfiable());

  Octagon ok(1);
  ok.add_upper(0, 5.0, false);
  ok.add_lower(0, 5.0, false);
  ok.close();
  EXPECT_FALSE(ok.unsatisfiable());
}

TEST(Octagon, StrictEntailment) {
  Octagon oct(1);
  oct.add_upper(0, 5.0, true);  // x < 5
  oct.close();
  EXPECT_TRUE(oct.entails_upper(0, 5.0, true));
  EXPECT_TRUE(oct.entails_upper(0, 5.0, false));  // x < 5 implies x <= 5
  Octagon weak(1);
  weak.add_upper(0, 5.0, false);  // x <= 5
  weak.close();
  EXPECT_TRUE(weak.entails_upper(0, 5.0, false));
  EXPECT_FALSE(weak.entails_upper(0, 5.0, true));  // x <= 5 does not imply x < 5
}

TEST(EvalRelational, TracksExactShiftAgainstVariable) {
  VariableRegistry reg;
  reg.declare_range("rl_ev", 0.0, 4.0);
  const VarId v = VariableTable::instance().intern("rl_ev");
  const Predicate pred = parse_predicate("rlx <= rl_ev + 1");
  const ExprProgram prog = ExprProgram::compile(*pred.fun());
  const RelBounds rb = eval_relational(prog, RegistryVarBounds(reg), {v});
  ASSERT_TRUE(rb.diff.count(v));
  // The certified shift brackets 1 tightly; the sub-ulp slack absorbs the
  // evaluator's own rounding of fl(v + 1) (widen_err).
  const Interval d = rb.diff.at(v);
  EXPECT_LE(d.lo, 1.0);
  EXPECT_GE(d.hi, 1.0);
  EXPECT_LE(d.hi - d.lo, 4 * std::numeric_limits<double>::epsilon() * 5.0);
  EXPECT_EQ(rb.value.lo, 1.0);
  EXPECT_EQ(rb.value.hi, 5.0);
}

TEST(EvalRelational, MultiplicationDropsRelationsButKeepsEnvelope) {
  VariableRegistry reg;
  reg.declare_range("rl_ev", 0.0, 4.0);
  const VarId v = VariableTable::instance().intern("rl_ev");
  const Predicate pred = parse_predicate("rlx <= 2 * rl_ev");
  const ExprProgram prog = ExprProgram::compile(*pred.fun());
  const RelBounds rb = eval_relational(prog, RegistryVarBounds(reg), {v});
  EXPECT_FALSE(rb.diff.count(v));
  EXPECT_FALSE(rb.sum.count(v));
  EXPECT_LE(rb.value.lo, 0.0);
  EXPECT_GE(rb.value.hi, 8.0);
}

VariableRegistry moving_center_registry() {
  VariableRegistry reg;
  reg.declare_range("rl_c", -100.0, 100.0);
  reg.set("rl_c", 10.0, SimTime::zero());
  return reg;
}

TEST(RelationalCovering, MovingZoneCoversNarrowerMovingZone) {
  const VariableRegistry reg = moving_center_registry();
  Subscription wide = parse_subscription("[tt=0.5] rlu >= rl_c - 60; rlu <= rl_c + 60");
  wide.set_id(SubscriptionId{1});
  Subscription narrow = parse_subscription("[tt=0.5] rlu >= rl_c - 30; rlu <= rl_c + 30");
  narrow.set_id(SubscriptionId{2});

  // The per-attribute inner shape of a wide-ranging moving zone is empty —
  // only the octagon sees that both zones track the same centre.
  EXPECT_EQ(covers(wide, narrow, reg, /*relational=*/false), CoverVerdict::kUnknown);
  EXPECT_EQ(covers(wide, narrow, reg), CoverVerdict::kCovers);
  // Never the other way around.
  EXPECT_EQ(covers(narrow, wide, reg), CoverVerdict::kUnknown);
}

TEST(RelationalCovering, IdenticalEvolvingBoundProvedBySyntacticShortcut) {
  const VariableRegistry reg = moving_center_registry();
  // `3 * rl_c` goes through kMul, which certifies no relational bounds —
  // only instruction-identical code on both sides can discharge it.
  Subscription a = parse_subscription("[tt=0.5] rlu <= 3 * rl_c");
  a.set_id(SubscriptionId{1});
  Subscription b = parse_subscription("[tt=0.5] rlu <= 3 * rl_c; rlu >= 0");
  b.set_id(SubscriptionId{2});
  EXPECT_EQ(covers(a, b, reg, /*relational=*/false), CoverVerdict::kUnknown);
  EXPECT_EQ(covers(a, b, reg), CoverVerdict::kCovers);

  // A strictly tighter operator on B's side also satisfies A's.
  Subscription b2 = parse_subscription("[tt=0.5] rlu < 3 * rl_c; rlu >= 0");
  b2.set_id(SubscriptionId{3});
  EXPECT_EQ(covers(a, b2, reg), CoverVerdict::kCovers);
  // The converse (A strict, B non-strict) must NOT be provable.
  Subscription a2 = parse_subscription("[tt=0.5] rlu < 3 * rl_c");
  a2.set_id(SubscriptionId{4});
  EXPECT_EQ(covers(a2, b, reg), CoverVerdict::kUnknown);
}

TEST(RelationalCovering, TimeDependentBoundsAreNotShortcut) {
  // Identical programs referencing `t` must not match syntactically: the two
  // subscriptions age from different epochs.
  VariableRegistry reg;
  Subscription a = parse_subscription("[tt=0.5] rlu <= 3 * t");
  a.set_id(SubscriptionId{1});
  Subscription b = parse_subscription("[tt=0.5] rlu <= 3 * t; rlu >= 0");
  b.set_id(SubscriptionId{2});
  EXPECT_EQ(covers(a, b, reg), CoverVerdict::kUnknown);
}

TEST(RelationalCovering, IndexSuppressesRelationallyCoveredSubscription) {
  const VariableRegistry reg = moving_center_registry();
  Subscription wide = parse_subscription("[tt=0.5] rlu >= rl_c - 60; rlu <= rl_c + 60");
  wide.set_id(SubscriptionId{1});
  Subscription narrow = parse_subscription("[tt=0.5] rlu >= rl_c - 30; rlu <= rl_c + 30");
  narrow.set_id(SubscriptionId{2});

  CoveringIndex relational_index;
  EXPECT_FALSE(relational_index.add(wide, reg).parent.valid());
  const auto added = relational_index.add(narrow, reg);
  EXPECT_EQ(added.parent, SubscriptionId{1});
  EXPECT_GE(relational_index.stats().relational, 1u);

  CoveringIndex plain_index{/*relational=*/false};
  EXPECT_FALSE(plain_index.add(wide, reg).parent.valid());
  EXPECT_FALSE(plain_index.add(narrow, reg).parent.valid());
  EXPECT_EQ(plain_index.stats().relational, 0u);
}

TEST(AnalyzerRelational, CrossAttributeInfeasibilityIsRelUnsatisfiable) {
  VariableRegistry reg;
  reg.declare_range("rl_c", -100.0, 100.0);
  // Per attribute both predicates are satisfiable against the envelope of
  // rl_c; together they demand rlu <= rl_c and rlu >= rl_c + 10.
  Subscription sub =
      parse_subscription("[tt=0.5] rlu <= rl_c; rlu >= rl_c + 10");
  sub.set_id(SubscriptionId{1});
  const SubscriptionAnalysis analysis = analyze_subscription(sub, reg);
  EXPECT_EQ(analysis.verdict, Verdict::kRelUnsatisfiable);
  EXPECT_EQ(to_string(analysis.verdict), "relationally-unsatisfiable");
}

TEST(AnalyzerRelational, EntailedPredicateIsRelRedundant) {
  VariableRegistry reg;
  reg.declare_range("rl_c", -100.0, 100.0);
  reg.set("rl_c", 0.0, SimTime::zero());
  Subscription sub = parse_subscription("[tt=0.5] rlu <= rl_c; rlu <= rl_c + 5");
  sub.set_id(SubscriptionId{1});
  const SubscriptionAnalysis analysis = analyze_subscription(sub, reg);
  EXPECT_EQ(analysis.verdict, Verdict::kRelRedundant);
  EXPECT_EQ(analysis.redundant_predicate, 1);
  EXPECT_EQ(to_string(analysis.verdict), "relationally-redundant");
}

TEST(AnalyzerRelational, TightMovingZoneIsNotRedundant) {
  VariableRegistry reg;
  reg.declare_range("rl_c", -100.0, 100.0);
  reg.set("rl_c", 0.0, SimTime::zero());
  Subscription sub = parse_subscription("[tt=0.5] rlu >= rl_c - 30; rlu <= rl_c + 30");
  sub.set_id(SubscriptionId{1});
  const SubscriptionAnalysis analysis = analyze_subscription(sub, reg);
  EXPECT_EQ(analysis.verdict, Verdict::kOk);
}

TEST(AnalyzerRelational, SeverityOrdering) {
  EXPECT_GT(severity(Verdict::kMalformed), severity(Verdict::kUnsatisfiable));
  EXPECT_GT(severity(Verdict::kUnsatisfiable), severity(Verdict::kRelUnsatisfiable));
  EXPECT_GT(severity(Verdict::kRelUnsatisfiable), severity(Verdict::kAdUncovered));
  EXPECT_GT(severity(Verdict::kAdUncovered), severity(Verdict::kConstant));
  EXPECT_GT(severity(Verdict::kConstant), severity(Verdict::kRelRedundant));
  EXPECT_GT(severity(Verdict::kRelRedundant), severity(Verdict::kOk));
}

TEST(ExactEndpoints, ExactShiftEnvelopeHasCrispBounds) {
  VariableRegistry reg;
  reg.declare_range("rl_ev", 0.0, 4.0);
  const Predicate pred = parse_predicate("rlx <= rl_ev + 1");
  const ExprProgram prog = ExprProgram::compile(*pred.fun());
  const Interval env = eval_interval(prog, RegistryVarBounds(reg));
  EXPECT_EQ(env.lo, 1.0);  // no 1-ulp fail-closed widening on exact sums
  EXPECT_EQ(env.hi, 5.0);
}

TEST(ExactEndpoints, ExactEvolvingBoundCoversMatchingStaticBound) {
  // Regression for the 1-ulp fail-closed gap: the guaranteed side of
  // `rlx <= rl_ev + 1` is exactly 1, so it provably covers `rlx <= 1`
  // without the octagon refinement.
  VariableRegistry reg;
  reg.declare_range("rl_ev", 0.0, 4.0);
  reg.set("rl_ev", 2.0, SimTime::zero());
  Subscription a = parse_subscription("[tt=0.5] rlx <= rl_ev + 1");
  a.set_id(SubscriptionId{1});
  Subscription b = parse_subscription("rlx <= 1");
  b.set_id(SubscriptionId{2});
  EXPECT_EQ(covers(a, b, reg, /*relational=*/false), CoverVerdict::kCovers);
}

TEST(ExactEndpoints, InexactArithmeticStillWidens) {
  // 0.1 + 0.2 is inexact in binary; the envelope must strictly contain it.
  VariableRegistry reg;
  reg.declare_range("rl_ev", 0.1, 0.1);
  const Predicate pred = parse_predicate("rlx <= rl_ev + 0.2");
  const ExprProgram prog = ExprProgram::compile(*pred.fun());
  const Interval env = eval_interval(prog, RegistryVarBounds(reg));
  // Degenerate operands evaluate point-exactly (the evaluator computes the
  // same rounded double), so this stays a point...
  EXPECT_EQ(env.lo, env.hi);
  // ...but a genuine range with inexact endpoint arithmetic must widen.
  VariableRegistry reg2;
  reg2.declare_range("rl_ev2", 0.0, 0.1);
  const Predicate pred2 = parse_predicate("rlx <= rl_ev2 + 0.2");
  const ExprProgram prog2 = ExprProgram::compile(*pred2.fun());
  const Interval env2 = eval_interval(prog2, RegistryVarBounds(reg2));
  EXPECT_EQ(env2.lo, 0.2);  // 0 + 0.2 is exact: no widening
  EXPECT_GT(env2.hi, 0.1 + 0.2);  // 0.1 + 0.2 is inexact: widened up
}

}  // namespace
}  // namespace evps
