// evps-lint — offline static analysis of subscription scenarios.
//
// Runs the same subscribe-time analysis the broker applies
// (analysis/analyzer.hpp) over a scenario file, printing one verdict per
// subscription plus caret diagnostics for parse failures. Exits nonzero when
// any subscription is malformed, unsatisfiable (per-attribute or relational —
// see analysis/relational.hpp), or fails to parse, so the tool slots into CI
// and pre-deployment checks. Relationally-redundant subscriptions (a
// predicate entailed by the others) are warnings.
//
// Options:
//   --covering   also run the pairwise covering analysis
//                (analysis/covering.hpp) and warn about subscriptions whose
//                publications are provably contained in an earlier one —
//                redundant for covering-based routing.
//   --json       machine-readable report on stdout (one JSON object; human
//                text and caret diagnostics are suppressed).
//   --werror     treat warnings (ad-uncovered / relationally-redundant
//                verdicts, covering redundancy) as errors: they flip the
//                exit code to 1.
//
// Exit codes: 0 = clean (warnings allowed unless --werror), 1 = at least one
// error (or warning under --werror), 2 = usage or file I/O problem.
//
// Scenario format (one directive per line, '#' starts a comment):
//
//   var <name> in [<lo>, <hi>]          declare an evolution-variable range
//   var <name> = <value> in [<lo>, <hi>]    ... and set its current value
//   adv <pred> [; <pred>]...            an advertisement (codec predicates)
//   sub <subscription>                  a subscription (codec text language)
//
// Example:
//   var load in [0, 1]
//   adv price >= 0; price <= 100
//   sub [tt=0.5] price <= 120 + 10 * load; price >= 150
//
// prints "unsatisfiable" for the subscription (price cannot exceed 130 yet
// must reach 150) and exits 1.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/covering_index.hpp"
#include "analysis/scenario.hpp"
#include "common/sim_time.hpp"
#include "message/codec.hpp"

namespace {

using namespace evps;

struct Options {
  bool covering = false;
  bool json = false;
  bool werror = false;
};

struct Diagnostic {
  int line_no = 0;
  bool warning = false;  // false => error
  std::string message;
};

struct SubRecord {
  int index = 0;  // 1-based within the file
  int line_no = 0;
  std::string line;       // full source line (for caret diagnostics)
  std::size_t body_col = 0;
  std::string text;       // directive body as written
  Subscription sub;
  std::string verdict;
  std::string diagnostic;
  std::string folds_to;  // non-empty for constant folds
};

struct CoverFinding {
  int coverer = 0;  // sub index that covers
  int covered = 0;  // sub index made redundant
};

struct LintContext {
  std::string path;
  Options opts;
  VariableRegistry registry;
  std::vector<Advertisement> ads;
  std::vector<SubRecord> subs;
  std::vector<Diagnostic> diags;
  std::vector<CoverFinding> covering;
  int errors = 0;
  int warnings = 0;
};

/// Print "file:line: error: ..." followed by the offending line with a caret
/// under the bad token. `offset` is relative to `body`, which starts at
/// column `body_col` of `line`. Suppressed (recorded only) in JSON mode.
void caret_diagnostic(LintContext& ctx, int line_no, const std::string& line,
                      std::size_t body_col, std::size_t offset, const std::string& token,
                      const std::string& message, bool warning = false) {
  ctx.diags.push_back(Diagnostic{line_no, warning, message});
  if (warning) {
    ++ctx.warnings;
  } else {
    ++ctx.errors;
  }
  if (ctx.opts.json) return;
  std::cerr << ctx.path << ":" << line_no << ": " << (warning ? "warning: " : "error: ")
            << message << "\n";
  std::cerr << "  " << line << "\n";
  std::cerr << "  " << std::string(body_col + offset, ' ') << '^'
            << std::string(token.size() > 1 ? token.size() - 1 : 0, '~') << "\n";
}

/// `var <name> [= <value>] in [<lo>, <hi>]` — syntax already validated by
/// parse_scenario; only the registry's semantic checks can fail here.
void handle_var(LintContext& ctx, const ScenarioDirective& d) {
  try {
    ctx.registry.declare_range(d.var_name, d.var_lo, d.var_hi);
    if (d.var_has_value) ctx.registry.set(d.var_name, d.var_value, SimTime::zero());
  } catch (const std::invalid_argument& e) {
    caret_diagnostic(ctx, d.line_no, d.line, 0, 0, "", e.what());
  }
}

void handle_adv(LintContext& ctx, const ScenarioDirective& d) {
  // Metadata options make no sense on an advertisement and are rejected
  // upstream; the predicate list reuses the subscription grammar.
  ctx.ads.emplace_back(MessageId{static_cast<std::uint64_t>(ctx.ads.size() + 1)}, ClientId{0},
                       d.sub.predicates());
}

void handle_sub(LintContext& ctx, const ScenarioDirective& d) {
  SubRecord rec;
  rec.sub = d.sub;
  rec.index = static_cast<int>(ctx.subs.size()) + 1;
  rec.line_no = d.line_no;
  rec.line = d.line;
  rec.body_col = d.body_col;
  rec.text = d.body;
  rec.sub.set_id(SubscriptionId{static_cast<std::uint64_t>(rec.index)});

  std::vector<const Advertisement*> ads;
  ads.reserve(ctx.ads.size());
  for (const Advertisement& adv : ctx.ads) ads.push_back(&adv);
  const SubscriptionAnalysis analysis = analyze_subscription(rec.sub, ctx.registry, ads);
  rec.verdict = to_string(analysis.verdict);
  rec.diagnostic = analysis.diagnostic;
  if (analysis.verdict == Verdict::kConstant && analysis.folded.has_value()) {
    rec.folds_to = serialize(*analysis.folded);
  }

  if (!ctx.opts.json) {
    std::cout << ctx.path << ":" << rec.line_no << ": sub " << rec.index << ": " << rec.verdict;
    if (!rec.diagnostic.empty()) std::cout << " — " << rec.diagnostic;
    std::cout << "\n";
    if (!rec.folds_to.empty()) std::cout << "    folds to: " << rec.folds_to << "\n";
  }
  if (analysis.verdict == Verdict::kMalformed || analysis.verdict == Verdict::kUnsatisfiable ||
      analysis.verdict == Verdict::kRelUnsatisfiable) {
    ++ctx.errors;
    ctx.diags.push_back(Diagnostic{rec.line_no, false, rec.verdict + ": " + rec.diagnostic});
  } else if (analysis.verdict == Verdict::kAdUncovered ||
             analysis.verdict == Verdict::kRelRedundant) {
    // Installable but suboptimal: a warning (fails under --werror).
    ++ctx.warnings;
    ctx.diags.push_back(Diagnostic{rec.line_no, true, rec.verdict + ": " + rec.diagnostic});
  }
  ctx.subs.push_back(std::move(rec));
}

/// Covering pass (--covering): warn about every subscription whose
/// publication set is provably contained in another's — it is redundant for
/// covering-based routing (the broker would suppress its dissemination).
///
/// Runs on the same incremental CoveringIndex the brokers use, inserting the
/// subscriptions in file order against the final variable state: a parent
/// edge means the new subscription is covered by an existing root, a
/// demotion means the new subscription covers earlier roots. Each covered
/// subscription yields exactly one finding (its forest parent), and an
/// equivalence class keeps its earliest member as the representative — same
/// semantics as the old O(n²) pairwise scan at O(n · candidate) cost.
void covering_report(LintContext& ctx) {
  CoveringIndex index;
  std::vector<CoverFinding> findings;
  for (const SubRecord& rec : ctx.subs) {
    const CoveringIndex::AddResult result = index.add(rec.sub, ctx.registry);
    if (result.parent.valid()) {
      findings.push_back(CoverFinding{static_cast<int>(result.parent.value()), rec.index});
    }
    for (const SubscriptionId demoted : result.demoted) {
      findings.push_back(CoverFinding{rec.index, static_cast<int>(demoted.value())});
    }
  }
  // Report in file order of the covered subscription, like the old scan.
  std::sort(findings.begin(), findings.end(),
            [](const CoverFinding& a, const CoverFinding& b) { return a.covered < b.covered; });
  for (const CoverFinding& f : findings) {
    const SubRecord& covered = ctx.subs[static_cast<std::size_t>(f.covered) - 1];
    const SubRecord& coverer = ctx.subs[static_cast<std::size_t>(f.coverer) - 1];
    ctx.covering.push_back(f);
    caret_diagnostic(ctx, covered.line_no, covered.line, covered.body_col, 0, covered.text,
                     "sub " + std::to_string(covered.index) + " is covered by sub " +
                         std::to_string(coverer.index) + " (line " +
                         std::to_string(coverer.line_no) +
                         "): redundant for covering-based routing",
                     /*warning=*/true);
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void print_json(const LintContext& ctx, int exit_code, std::ostream& os) {
  os << "{\"path\":\"" << json_escape(ctx.path) << "\",\"exit\":" << exit_code
     << ",\"errors\":" << ctx.errors << ",\"warnings\":" << ctx.warnings
     << ",\"subscriptions\":[";
  for (std::size_t i = 0; i < ctx.subs.size(); ++i) {
    const SubRecord& rec = ctx.subs[i];
    if (i != 0) os << ",";
    os << "{\"index\":" << rec.index << ",\"line\":" << rec.line_no << ",\"text\":\""
       << json_escape(rec.text) << "\",\"verdict\":\"" << json_escape(rec.verdict) << "\"";
    if (!rec.diagnostic.empty()) os << ",\"diagnostic\":\"" << json_escape(rec.diagnostic) << "\"";
    if (!rec.folds_to.empty()) os << ",\"folds_to\":\"" << json_escape(rec.folds_to) << "\"";
    os << "}";
  }
  os << "],\"diagnostics\":[";
  for (std::size_t i = 0; i < ctx.diags.size(); ++i) {
    const Diagnostic& d = ctx.diags[i];
    if (i != 0) os << ",";
    os << "{\"line\":" << d.line_no << ",\"severity\":\"" << (d.warning ? "warning" : "error")
       << "\",\"message\":\"" << json_escape(d.message) << "\"}";
  }
  os << "],\"covering\":[";
  for (std::size_t i = 0; i < ctx.covering.size(); ++i) {
    if (i != 0) os << ",";
    os << "{\"coverer\":" << ctx.covering[i].coverer << ",\"covered\":" << ctx.covering[i].covered
       << "}";
  }
  os << "]}\n";
}

int lint_file(const std::string& path, const Options& opts) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "evps-lint: cannot open " << path << "\n";
    return 2;
  }
  LintContext ctx;
  ctx.path = path;
  ctx.opts = opts;
  std::stringstream buffer;
  buffer << in.rdbuf();
  // Syntax via the shared scenario front end (analysis/scenario.hpp);
  // directives replay in file order so each subscription is analyzed
  // against only the vars/ads that appeared above it.
  const Scenario scenario = parse_scenario(buffer.str());
  for (const ScenarioDirective& d : scenario.directives) {
    switch (d.kind) {
      case ScenarioDirective::Kind::kVar:
        handle_var(ctx, d);
        break;
      case ScenarioDirective::Kind::kAdv:
        handle_adv(ctx, d);
        break;
      case ScenarioDirective::Kind::kSub:
        handle_sub(ctx, d);
        break;
      case ScenarioDirective::Kind::kError:
        caret_diagnostic(ctx, d.line_no, d.line, d.body_col, d.error_offset, d.error_token,
                         d.error_message);
        break;
    }
  }
  if (opts.covering) covering_report(ctx);

  const bool failed = ctx.errors != 0 || (opts.werror && ctx.warnings != 0);
  const int rc = failed ? 1 : 0;
  if (opts.json) {
    print_json(ctx, rc, std::cout);
    return rc;
  }
  std::cout << path << ": " << ctx.subs.size() << " subscription(s), " << ctx.errors
            << " error(s), " << ctx.warnings << " warning(s)";
  if (opts.werror && ctx.errors == 0 && ctx.warnings != 0) std::cout << " [--werror]";
  std::cout << "\n";
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--covering") {
      opts.covering = true;
    } else if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--werror") {
      opts.werror = true;
    } else if (arg == "--help" || arg == "-h") {
      paths.clear();
      break;
    } else if (!arg.empty() && arg.front() == '-') {
      std::cerr << "evps-lint: unknown option " << arg << "\n";
      return 2;
    } else {
      paths.emplace_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "usage: evps-lint [--covering] [--json] [--werror] <scenario>...\n"
              << "Statically analyzes subscription scenarios; see tools/evps_lint.cpp\n"
              << "for the scenario format.\n"
              << "  --covering  warn about subscriptions covered by another (redundant)\n"
              << "  --json      machine-readable report on stdout\n"
              << "  --werror    warnings (uncovered/covering) become errors\n"
              << "Exit codes: 0 clean, 1 problems found, 2 usage/IO error.\n";
    return 2;
  }
  int rc = 0;
  for (const std::string& path : paths) {
    rc = std::max(rc, lint_file(path, opts));
  }
  return rc;
}
