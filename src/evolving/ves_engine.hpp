// Versioned Evolving Subscriptions (VES) — Sections IV-A and V-A.
//
// Each evolving subscription is materialised into a non-evolving *version*
// kept in the standard matcher. Versions are refreshed autonomously:
//
//   * The ESQ orders subscriptions by their next scheduled evolution time
//     (install time + MEI).
//   * When a subscription becomes due, it evolves immediately if a variable
//     it depends on has changed since its current version was built — the
//     continuous variable `t` counts as always-changing. Otherwise it parks
//     in the ready list until one of its variables changes (the paper's
//     "list of subscriptions that are ready to evolve").
//   * Evolving = remove old version from the matcher, insert the freshly
//     evaluated one, reschedule at now + MEI. The cost of these matcher
//     operations is the VES maintenance overhead measured in Figures 8/9.
//
// Matching publications uses only the standard matcher (fast), which is why
// VES "has the advantage of not being affected by publications".
//
// Dependency tracking is keyed by interned VarId: each evolving state keeps
// a sorted id vector with the registry versions observed at the last
// materialisation, and the registry's change listener reports VarIds, so
// change fan-out never touches variable names.
#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "evolving/engine.hpp"
#include "evolving/esq.hpp"
#include "expr/program.hpp"

namespace evps {

class VesEngine final : public BrokerEngine {
 public:
  explicit VesEngine(const EngineConfig& config) : BrokerEngine(config) {}
  ~VesEngine() override;

  /// Subscriptions currently parked awaiting a variable change.
  [[nodiscard]] std::size_t ready_count() const noexcept { return ready_.size(); }
  /// Live entries in the evolving subscription queue.
  [[nodiscard]] std::size_t queued_count() const noexcept { return esq_.size(); }

 protected:
  void do_add(const Installed& entry, EngineHost& host) override;
  void do_remove(const Installed& entry, EngineHost& host) override;
  void do_match(const Publication& pub, const VariableSnapshot* snapshot, EngineHost& host,
                std::vector<NodeId>& destinations) override;
  void do_match_batch(std::span<const Publication* const> pubs, const VariableSnapshot* snapshot,
                      EngineHost& host, std::vector<std::vector<NodeId>>& destinations) override;

 private:
  struct EvolvingState {
    SubscriptionPtr sub;
    /// Compiled operands, parallel to sub->predicates(); empty programs in
    /// the slots of static predicates.
    std::vector<ExprProgram> progs;
    /// Discrete evolution variables referenced, sorted ascending (`t`
    /// excluded — it is tracked by depends_on_time).
    std::vector<VarId> vars;
    /// Registry versions captured when the current version was materialised,
    /// parallel to `vars`.
    std::vector<std::uint64_t> seen_versions;
    bool depends_on_time = false;  // references the continuous `t`
    /// Widen versions over the MEI window (forwarding-hop subscriptions
    /// under the overestimation extension, Section IV-A).
    bool overestimate = false;
  };

  void ensure_listener(EngineHost& host);
  void arm_timer(EngineHost& host);
  void on_timer(EngineHost& host);
  void on_variable_changed(VarId var, EngineHost& host);

  /// True iff any depended-on variable changed since materialisation.
  [[nodiscard]] bool needs_evolution(const EvolvingState& state,
                                     const VariableRegistry& registry) const;

  /// Replace the matcher version with a fresh evaluation and reschedule.
  void evolve(SubscriptionId id, EvolvingState& state, EngineHost& host);

  /// Bulk version swap: re-materialise every id in `due` (unknown ids are
  /// skipped), remove the old versions, and install the new ones through one
  /// matcher add_batch — the paged bound indexes then pay one sorted merge
  /// per touched (attribute, operator) list instead of one binary-searched
  /// insert per predicate. Timer and variable-change waves both land here.
  void evolve_batch(const std::vector<SubscriptionId>& due, EngineHost& host);

  /// Non-evolving version of the subscription at `now`; if the state asks
  /// for overestimation, range predicates are widened to the extreme the
  /// function reaches anywhere in [now, now + MEI]. Uses the engine's
  /// shared scope and eval stack (maintenance path, not reentrant).
  [[nodiscard]] std::vector<Predicate> materialize_version(const EvolvingState& state,
                                                           const VariableRegistry& registry,
                                                           SimTime now);

  EvolvingSubscriptionQueue esq_;
  std::unordered_map<SubscriptionId, EvolvingState> evolving_;
  /// Due subscriptions awaiting a change of one of their variables.
  std::set<SubscriptionId> ready_;
  VariableRegistry* listened_registry_ = nullptr;
  VariableRegistry::ListenerId listener_id_ = 0;
  SimTime armed_until_ = SimTime::max();
  bool timer_armed_ = false;
};

}  // namespace evps
