// Per-shard matcher occupancy and batch-publication counters.
//
// Header-only on purpose: the counters are embedded in BrokerEngine
// (src/evolving), which evps_metrics itself links against through
// evps_broker — a .cpp here would close a library cycle. Only the report
// formatter lives in shard_counters.cpp (it is called from harness code, not
// from the engines).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/stats.hpp"

namespace evps {

/// Batch-matching accounting (BrokerEngine::match_batch).
struct BatchCounters {
  std::uint64_t batches = 0;               ///< match_batch calls
  std::uint64_t batched_publications = 0;  ///< publications across all batches
  std::uint64_t max_batch = 0;             ///< largest batch seen
  Summary batch_seconds;                   ///< wall time per batch

  void record(std::size_t batch_size, double seconds) noexcept {
    ++batches;
    batched_publications += batch_size;
    max_batch = std::max<std::uint64_t>(max_batch, batch_size);
    batch_seconds.record(seconds);
  }

  [[nodiscard]] double mean_batch() const noexcept {
    return batches == 0 ? 0.0
                        : static_cast<double>(batched_publications) / static_cast<double>(batches);
  }

  void reset() noexcept { *this = BatchCounters{}; }
};

/// Human-readable shard report: per-shard subscription occupancy plus batch
/// latency/size statistics. `occupancy` is BrokerEngine::shard_occupancy().
[[nodiscard]] std::string format_shard_report(const std::vector<std::size_t>& occupancy,
                                              const BatchCounters& batches);

}  // namespace evps
