# Empty dependencies file for test_lees.
# This may be replaced when dependencies are built.
