file(REMOVE_RECURSE
  "CMakeFiles/micro_engines.dir/bench/micro_engines.cpp.o"
  "CMakeFiles/micro_engines.dir/bench/micro_engines.cpp.o.d"
  "bench/micro_engines"
  "bench/micro_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
