// A content-based publish/subscribe broker (PADRES-style, Section III-A).
//
// Brokers form an acyclic overlay. Each client connects to exactly one
// broker. Subscriptions are disseminated either by flooding or towards
// matching advertisements; publications follow the reverse paths of the
// subscriptions they match. The broker delegates all matching (including
// evolving-subscription handling) to its BrokerEngine and acts as the
// EngineHost, supplying virtual time, timers and the broker-local evolution
// variable registry.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/covering_index.hpp"
#include "broker/link_batcher.hpp"
#include "common/ids.hpp"
#include "evolving/engine.hpp"
#include "expr/variable_registry.hpp"
#include "metrics/analysis_counters.hpp"
#include "metrics/covering_counters.hpp"
#include "sim/network.hpp"

namespace evps {

enum class RoutingMode { kFlooding, kAdvertisement };

/// What the broker does with subscribe-time static analysis verdicts
/// (analysis/analyzer.hpp).
enum class AnalysisPolicy {
  kOff,      ///< analysis not run (engine install-gate verification remains)
  kWarn,     ///< log and count verdicts, install everything as-is
  kEnforce,  ///< reject malformed/unsatisfiable, fold constant, flag uncovered
};

struct BrokerConfig {
  EngineConfig engine;
  RoutingMode routing = RoutingMode::kFlooding;
  /// Piggyback a snapshot of evolution-variable values on publications at
  /// their entry broker (Section V-D extension; effective for LEES/CLEES).
  bool snapshot_consistency = false;
  /// Subscribe-time static analysis. Enforcement is behaviour-preserving for
  /// well-formed satisfiable subscriptions: verdicts beyond kOk only fire
  /// when provable from declared variable ranges, and constant folds are
  /// bit-identical to lazy evaluation.
  AnalysisPolicy analysis = AnalysisPolicy::kEnforce;
  /// Covering-based subscription routing (analysis/covering_index.hpp):
  /// suppress forwarding a subscription towards neighbours its covering root
  /// already reaches, retract newly covered roots, and re-disseminate
  /// covered subscriptions when their coverer is removed or updated
  /// (uncover-on-remove). Delivery sets are unchanged — the suppressed
  /// directions are provably served by the root for every reachable
  /// evolution-variable assignment.
  bool covering = false;
  /// Octagon refinement of the covering check (analysis/relational.hpp):
  /// when the per-attribute shapes cannot decide a pair, prove covering
  /// relationally over `±attr ± var <= c` constraints — cross-attribute
  /// shapes like moving AoIs become suppressible. Only consulted when
  /// `covering` is on; the refinement only ever strengthens kUnknown to a
  /// proved kCovers, so delivery sets remain unchanged.
  bool relational_covering = true;
  /// Publication batching: buffer up to this many snapshot-free publications
  /// and match them with one BrokerEngine::match_batch call (amortising the
  /// matcher-shard pool dispatch). Buffered publications are flushed by a
  /// zero-delay timer in the same virtual instant — the simulator's
  /// same-time FIFO means timestamps, delivery sets and per-link message
  /// order towards each destination are unchanged. 1 (the default) keeps
  /// the immediate per-publication path. Snapshot-carrying publications
  /// always match immediately (each carries its own snapshot).
  std::size_t batch_size = 1;
  /// Link batching (DESIGN.md §14): buffer up to this many publications per
  /// outgoing link (neighbour forward or client delivery) and send them as
  /// one PublishBatchMsg/DeliveryBatchMsg. 0 resolves to the EVPS_LINK_BATCH
  /// environment variable (default 1, the per-message path). With a zero
  /// flush deadline, deliveries, timestamps and per-link order are
  /// bit-identical to the per-message path.
  std::size_t link_batch_size = 0;
  /// Maximum virtual time a publication may wait in a link buffer. Zero (the
  /// default) flushes in the same virtual instant — the equivalence-
  /// preserving policy. Positive deadlines trade bounded delivery lateness
  /// for fuller batches.
  Duration link_flush_deadline = Duration::zero();
  /// Account codec wire bytes per flushed message in the link counters
  /// (costs a serialization pass per sent message; benches only).
  bool measure_link_bytes = false;
};

struct BrokerStats {
  std::uint64_t received_total = 0;
  /// The paper's primary metric: subscription-related messages received
  /// (subscribe + unsubscribe + subscription update), Section VI-A1.
  std::uint64_t subscription_msgs = 0;
  std::uint64_t subscribes = 0;
  std::uint64_t unsubscribes = 0;
  std::uint64_t sub_updates = 0;
  std::uint64_t publications = 0;
  std::uint64_t advertisements = 0;
  std::uint64_t var_updates = 0;
  std::uint64_t pubs_forwarded = 0;
  std::uint64_t deliveries = 0;

  void reset() { *this = BrokerStats{}; }
};

class Broker final : public NetworkNode, public EngineHost {
 public:
  Broker(std::string name, Network& net, BrokerConfig config);
  ~Broker() override;

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  /// Link two brokers with the given latency. The overlay must stay acyclic.
  static void connect(Broker& a, Broker& b, Duration latency);

  /// Classify `client` as a directly-attached client endpoint. Called by
  /// PubSubClient::connect, which creates the network link.
  void accept_client(NodeId client);

  // --- EngineHost ----------------------------------------------------------
  [[nodiscard]] SimTime now() const override { return net_.simulator().now(); }
  void schedule(Duration delay, std::function<void()> fn) override {
    net_.simulator().after(delay, std::move(fn));
  }
  [[nodiscard]] VariableRegistry& variables() override { return registry_; }

  /// Set an evolution variable on this broker and flood the new value to all
  /// other brokers (control-plane propagation). Clients are not notified.
  void set_variable(const std::string& name, double value);

  /// Set an evolution variable locally without propagation (e.g. per-broker
  /// bandwidth, or locally-counted elapsed time).
  void set_variable_local(const std::string& name, double value);

  /// Broker self-protection (Section III-C): every `interval` until `until`,
  /// set the local evolution variable `name` to this broker's outgoing
  /// message rate (deliveries + forwarded publications per second) over the
  /// last interval. Subscriptions can then self-throttle, e.g.
  ///   distance < maxDist * (maxBw - outgoingBw)
  /// matches everything when idle and nothing at full load.
  /// The monitor timer captures this broker; it is cancelled automatically
  /// when the broker is destroyed (the returned handle allows earlier
  /// cancellation and may be discarded).
  TimerHandle enable_load_monitor(const std::string& name, Duration interval, SimTime until);

  // --- NetworkNode -----------------------------------------------------------
  void on_message(const Envelope& env) override;
  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] BrokerEngine& engine() noexcept { return *engine_; }
  [[nodiscard]] const BrokerEngine& engine() const noexcept { return *engine_; }
  [[nodiscard]] const BrokerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const AnalysisCounters& analysis_counters() const noexcept {
    return analysis_counters_;
  }
  [[nodiscard]] const CoveringCounters& covering_counters() const noexcept {
    return covering_counters_;
  }
  /// Covering pair-analysis stats; zeroes when covering routing is off.
  [[nodiscard]] CoverStats covering_stats() const noexcept {
    return covering_ ? covering_->stats() : CoverStats{};
  }
  /// The covering forest (null when BrokerConfig::covering is off).
  [[nodiscard]] const CoveringIndex* covering_index() const noexcept { return covering_.get(); }
  void reset_stats() noexcept { stats_.reset(); }
  /// What this broker's link batcher put on the wire (DESIGN.md §14).
  [[nodiscard]] const LinkBatchCounters& link_counters() const noexcept {
    return link_batcher_.counters();
  }
  [[nodiscard]] const BrokerConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t subscription_count() const noexcept { return engine_->size(); }

  /// Export this broker's complete routing-relevant state for offline
  /// verification (analysis/audit): routing table, advertisement table,
  /// covering forest, engine physical footprint, pending batch buffers and
  /// evolution-variable state. Purely observational — never perturbs the
  /// broker. The result is NOT normalized; see OverlaySnapshot::normalize.
  [[nodiscard]] audit::BrokerState export_snapshot() const;

 private:
  void handle_subscribe(const SubscribeMsg& msg, NodeId from);
  void handle_unsubscribe(const UnsubscribeMsg& msg, NodeId from);
  void handle_update(const SubscriptionUpdateMsg& msg, NodeId from);
  void handle_publish(PublishMsg msg, NodeId from);
  void handle_publish_batch(const PublishBatchMsg& msg, NodeId from);
  /// Flush pending batched publications towards `to`, then send `msg`: every
  /// non-batchable (control / snapshot-carrying) message goes through this
  /// barrier so per-link relative order matches the per-message path.
  void send_to(NodeId to, Message msg);
  /// Buffer one matched-or-not publication and flush/schedule per
  /// BrokerConfig::batch_size.
  void enqueue_publication(PublishMsg msg, NodeId from);
  /// Match + forward everything in pending_pubs_ with one engine batch call.
  void flush_pending_publications();
  /// Forward `msg` to `destinations` (skipping `from`), counting stats.
  /// Snapshot-free publications route through the link batcher;
  /// snapshot-carrying ones bypass it (each evaluates under its own
  /// snapshot) behind the order-preserving barrier.
  void forward_publication(const PublishMsg& msg, NodeId from,
                           const std::vector<NodeId>& destinations);
  void handle_advertise(const AdvertiseMsg& msg, NodeId from);
  void handle_unadvertise(const UnadvertiseMsg& msg, NodeId from);
  void handle_var_update(const VarUpdateMsg& msg, NodeId from);

  /// Broker neighbours a new subscription must be forwarded to.
  [[nodiscard]] std::vector<NodeId> subscription_forward_targets(const Subscription& sub,
                                                                 NodeId from) const;

  /// Run subscribe-time static analysis per BrokerConfig::analysis. Returns
  /// the subscription to install/forward (possibly a constant fold) or null
  /// when it must be rejected.
  [[nodiscard]] SubscriptionPtr analyze_incoming(const SubscriptionPtr& sub);

  /// Uncover-on-remove: forward each promoted subscription towards every
  /// neighbour it now needs (fresh targets minus directions already sent).
  /// Must run BEFORE the coverer's unsubscribe/update is forwarded —
  /// per-link FIFO then guarantees upstream brokers install the promoted
  /// subscription before the coverer disappears (no delivery gap).
  void resubscribe_promoted(const std::vector<SubscriptionId>& promoted);
  /// Retract a freshly demoted root: unsubscribe it from the directions its
  /// new coverer was just forwarded to (coverer's subscribe is already
  /// queued ahead on those links).
  void retract_demoted(const std::vector<SubscriptionId>& demoted,
                       const std::vector<NodeId>& coverer_forwards);

  Network& net_;
  std::string name_;
  BrokerConfig config_;
  VariableRegistry registry_;
  BrokerEnginePtr engine_;
  std::set<NodeId> broker_neighbors_;
  std::set<NodeId> client_neighbors_;
  /// Broker neighbours each subscription was forwarded to; unsubscribes and
  /// updates follow the same paths.
  std::unordered_map<SubscriptionId, std::vector<NodeId>> sub_forwards_;
  /// Advertisements with the neighbour they arrived from.
  std::map<MessageId, std::pair<std::shared_ptr<const Advertisement>, NodeId>> adverts_;
  /// Load-monitor timers; cancelled on destruction so no simulator callback
  /// outlives the broker it captures.
  std::vector<TimerHandle> monitors_;
  /// Publication batching buffer (BrokerConfig::batch_size > 1): arrivals in
  /// FIFO order with the neighbour each came from, plus grow-only scratch
  /// for the contiguous engine batch. The alive flag guards the zero-delay
  /// flush timer against broker teardown.
  std::vector<std::pair<PublishMsg, NodeId>> pending_pubs_;
  std::vector<const Publication*> batch_ptrs_;
  std::vector<std::vector<NodeId>> batch_dests_;
  bool flush_scheduled_ = false;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  /// Per-link outgoing batching (BrokerConfig::link_batch_size).
  LinkBatcher link_batcher_;
  BrokerStats stats_;
  AnalysisCounters analysis_counters_;
  /// Covering forest over installed subscriptions (BrokerConfig::covering).
  std::unique_ptr<CoveringIndex> covering_;
  CoveringCounters covering_counters_;
};

}  // namespace evps
