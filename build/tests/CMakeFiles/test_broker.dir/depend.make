# Empty dependencies file for test_broker.
# This may be replaced when dependencies are built.
