file(REMOVE_RECURSE
  "libevps_matching.a"
)
