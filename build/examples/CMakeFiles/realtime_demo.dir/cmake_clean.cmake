file(REMOVE_RECURSE
  "CMakeFiles/realtime_demo.dir/realtime_demo.cpp.o"
  "CMakeFiles/realtime_demo.dir/realtime_demo.cpp.o.d"
  "realtime_demo"
  "realtime_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realtime_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
