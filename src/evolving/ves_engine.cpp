#include "evolving/ves_engine.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/verifier.hpp"

namespace evps {

VesEngine::~VesEngine() {
  if (listened_registry_ != nullptr) listened_registry_->remove_listener(listener_id_);
}

void VesEngine::do_add(const Installed& entry, EngineHost& host) {
  const auto& sub = *entry.sub;
  if (!sub.is_evolving()) {
    matcher_add_static(entry);
    return;
  }
  ensure_listener(host);

  EvolvingState state;
  state.sub = entry.sub;
  state.progs.reserve(sub.predicates().size());
  for (const auto& p : sub.predicates()) {
    state.progs.push_back(p.is_evolving() ? ExprProgram::compile(*p.fun()) : ExprProgram{});
    // Gate before install: materialize_version runs these programs without
    // bounds checks, so malformed ones must never enter the state table.
    if (p.is_evolving()) verify_or_throw(state.progs.back());
    for (const VarId var : state.progs.back().variables()) state.vars.push_back(var);
  }
  std::sort(state.vars.begin(), state.vars.end());
  state.vars.erase(std::unique(state.vars.begin(), state.vars.end()), state.vars.end());
  const auto t_pos =
      std::find(state.vars.begin(), state.vars.end(), elapsed_time_var_id());
  if (t_pos != state.vars.end()) {
    state.depends_on_time = true;
    state.vars.erase(t_pos);
  }
  state.overestimate = config_.overestimate_forwarding && entry.dest_is_broker;

  const SimTime now = host.now();
  auto& registry = host.variables();
  {
    // Initial version (Figure 3): evaluate the predicate functions with the
    // current evolution-variable values and insert into the matcher.
    const ScopedTimer timer(costs_.maintenance);
    matcher_->add(sub.id(), materialize_version(state, registry, now));
  }
  state.seen_versions.reserve(state.vars.size());
  for (const VarId var : state.vars) state.seen_versions.push_back(registry.version(var));
  evolving_.emplace(sub.id(), std::move(state));

  esq_.push(sub.id(), now + effective_mei(sub));
  arm_timer(host);
}

void VesEngine::do_remove(const Installed& entry, EngineHost& /*host*/) {
  const SubscriptionId id = entry.sub->id();
  if (!entry.sub->is_evolving()) {
    matcher_remove_static(id);
    return;
  }
  matcher_->remove(id);
  esq_.remove(id);
  ready_.erase(id);
  evolving_.erase(id);
}

void VesEngine::do_match(const Publication& pub, const VariableSnapshot* /*snapshot*/,
                         EngineHost& /*host*/, std::vector<NodeId>& destinations) {
  // VES matches against the currently stored versions only; piggybacked
  // snapshots cannot retroactively change the versions (Section V-D notes
  // snapshots "render VES ineffective"), so they are ignored here.
  m1_.clear();
  {
    const ScopedTimer timer(costs_.match);
    matcher_->match(pub, m1_);
  }
  for (const auto id : m1_) {
    const Installed* entry = installed_entry(id);
    if (entry != nullptr) destinations.push_back(entry->dest);
  }
}

void VesEngine::do_match_batch(std::span<const Publication* const> pubs,
                               const VariableSnapshot* /*snapshot*/, EngineHost& /*host*/,
                               std::vector<std::vector<NodeId>>& destinations) {
  // Snapshots are ignored exactly like do_match (Section V-D).
  matcher_only_match_batch(pubs, destinations);
}

void VesEngine::ensure_listener(EngineHost& host) {
  auto& registry = host.variables();
  if (listened_registry_ == &registry) return;
  if (listened_registry_ != nullptr) listened_registry_->remove_listener(listener_id_);
  listened_registry_ = &registry;
  listener_id_ =
      registry.add_listener([this, &host](VarId var, double /*value*/, SimTime /*when*/) {
        on_variable_changed(var, host);
      });
}

void VesEngine::arm_timer(EngineHost& host) {
  const auto next = esq_.next_due();
  if (!next.has_value()) return;
  if (timer_armed_ && armed_until_ <= *next) return;
  timer_armed_ = true;
  armed_until_ = *next;
  const Duration delay = *next - host.now();
  host.schedule(delay < Duration::zero() ? Duration::zero() : delay,
                [this, &host]() { on_timer(host); });
}

void VesEngine::on_timer(EngineHost& host) {
  timer_armed_ = false;
  armed_until_ = SimTime::max();
  std::vector<SubscriptionId> due;
  esq_.pop_due(host.now(), due);
  std::vector<SubscriptionId> to_evolve;
  for (const auto id : due) {
    const auto it = evolving_.find(id);
    if (it == evolving_.end()) continue;  // concurrently unsubscribed
    if (needs_evolution(it->second, host.variables())) {
      to_evolve.push_back(id);
    } else {
      // Park until one of its variables changes (paper's ready list).
      ready_.insert(id);
    }
  }
  evolve_batch(to_evolve, host);
  arm_timer(host);
}

void VesEngine::on_variable_changed(VarId var, EngineHost& host) {
  if (ready_.empty()) return;
  std::vector<SubscriptionId> to_evolve;
  for (const auto id : ready_) {
    const auto it = evolving_.find(id);
    if (it != evolving_.end() &&
        std::binary_search(it->second.vars.begin(), it->second.vars.end(), var)) {
      to_evolve.push_back(id);
    }
  }
  for (const auto id : to_evolve) ready_.erase(id);
  evolve_batch(to_evolve, host);
  arm_timer(host);
}

bool VesEngine::needs_evolution(const EvolvingState& state,
                                const VariableRegistry& registry) const {
  if (state.depends_on_time) return true;  // continuous variables always change
  // seen_versions records every depended-on variable, with 0 for variables
  // unknown at materialisation time — so a variable appearing later reads as
  // a version change too.
  for (std::size_t i = 0; i < state.vars.size(); ++i) {
    if (registry.version(state.vars[i]) != state.seen_versions[i]) return true;
  }
  return false;
}

std::vector<Predicate> VesEngine::materialize_version(const EvolvingState& state,
                                                      const VariableRegistry& registry,
                                                      SimTime now) {
  const auto& sub = *state.sub;
  const auto& preds = sub.predicates();
  std::vector<Predicate> out;
  out.reserve(preds.size());

  if (!state.overestimate) {
    scope_.rebind(&registry, now);
    scope_.set_epoch(sub.epoch());
    for (std::size_t i = 0; i < preds.size(); ++i) {
      const auto& p = preds[i];
      if (!p.is_evolving()) {
        out.push_back(p);
        continue;
      }
      bool unbound = false;
      double value = 0.0;
      try {
        value = state.progs[i].eval(scope_, eval_stack_);
      } catch (const UnboundVariableError&) {
        unbound = true;
      }
      // Mirror Predicate::materialize: an unbound variable yields a version
      // that can never be satisfied.
      out.push_back(unbound ? Predicate{p.attribute(), RelOp::kLt, Value{std::nan("")}}
                            : Predicate{p.attribute(), p.op(), Value{value}});
    }
    return out;
  }

  // Sample each predicate function across the upcoming MEI window and take
  // the loosest bound. Three samples cover linear and mildly curved
  // functions; discrete variables are piecewise-constant so their current
  // value holds across the window. Unlike the exact path, unbound variables
  // propagate (matching the seed's behaviour, which aborts the install).
  const Duration mei = effective_mei(sub);
  const SimTime times[3] = {now, now + mei / 2, now + mei};
  for (std::size_t i = 0; i < preds.size(); ++i) {
    const auto& p = preds[i];
    if (!p.is_evolving()) {
      out.push_back(p);
      continue;
    }
    double samples[3];
    for (int s = 0; s < 3; ++s) {
      scope_.rebind(&registry, times[s]);
      scope_.set_epoch(sub.epoch());
      samples[s] = state.progs[i].eval(scope_, eval_stack_);
    }
    double bound = samples[0];
    switch (p.op()) {
      case RelOp::kLe:
      case RelOp::kLt:
        bound = std::max({samples[0], samples[1], samples[2]});
        break;
      case RelOp::kGe:
      case RelOp::kGt:
        bound = std::min({samples[0], samples[1], samples[2]});
        break;
      case RelOp::kEq:
      case RelOp::kNe:
        break;  // equality cannot be widened conservatively; keep exact
    }
    out.push_back(Predicate{p.attribute(), p.op(), Value{bound}});
  }
  return out;
}

void VesEngine::evolve(SubscriptionId id, EvolvingState& state, EngineHost& host) {
  auto& registry = host.variables();
  const SimTime now = host.now();
  {
    // Replace the stored version: the remove + insert against the matcher is
    // the dominant VES maintenance cost (Figure 9 discussion).
    const ScopedTimer timer(costs_.maintenance);
    const std::vector<Predicate> version = materialize_version(state, registry, now);
    matcher_->remove(id);
    matcher_->add(id, version);
  }
  ++costs_.evolutions;
  for (std::size_t i = 0; i < state.vars.size(); ++i) {
    state.seen_versions[i] = registry.version(state.vars[i]);
  }
  esq_.push(id, now + effective_mei(*state.sub));
}

void VesEngine::evolve_batch(const std::vector<SubscriptionId>& due, EngineHost& host) {
  if (due.empty()) return;
  if (due.size() == 1) {
    const auto it = evolving_.find(due.front());
    if (it != evolving_.end()) evolve(due.front(), it->second, host);
    return;
  }
  auto& registry = host.variables();
  const SimTime now = host.now();
  std::vector<MatcherBatchEntry> batch;
  batch.reserve(due.size());
  std::vector<EvolvingState*> states;
  states.reserve(due.size());
  {
    // One timer sample over the whole wave; benches consume maintenance.sum()
    // so batching the measurement does not change what is reported.
    const ScopedTimer timer(costs_.maintenance);
    for (const auto id : due) {
      const auto it = evolving_.find(id);
      if (it == evolving_.end()) continue;
      batch.push_back(MatcherBatchEntry{id, materialize_version(it->second, registry, now)});
      states.push_back(&it->second);
      matcher_->remove(id);
    }
    matcher_->add_batch(std::move(batch));
  }
  costs_.evolutions += states.size();
  for (std::size_t i = 0; i < states.size(); ++i) {
    EvolvingState& state = *states[i];
    for (std::size_t v = 0; v < state.vars.size(); ++v) {
      state.seen_versions[v] = registry.version(state.vars[v]);
    }
    esq_.push(state.sub->id(), now + effective_mei(*state.sub));
  }
}

}  // namespace evps
