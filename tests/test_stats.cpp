#include "sim/stats.hpp"

#include <gtest/gtest.h>

namespace evps {
namespace {

TEST(Summary, EmptyDefaults) {
  const Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) s.record(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Summary, Merge) {
  Summary a;
  Summary b;
  a.record(1.0);
  a.record(2.0);
  b.record(10.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.max(), 10.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.sum(), 13.0);
}

TEST(Summary, Reset) {
  Summary s;
  s.record(5.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(Histogram, BucketAssignment) {
  Histogram h{{1.0, 2.0, 3.0}};
  h.record(0.5);  // bucket 0
  h.record(1.5);  // bucket 1
  h.record(2.0);  // bucket 2 (value == boundary goes high: upper_bound)
  h.record(2.5);  // bucket 2
  h.record(9.0);  // overflow bucket
  const auto& counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 2u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.summary().count(), 5u);
}

TEST(Histogram, RejectsUnsortedBoundaries) {
  EXPECT_THROW(Histogram({3.0, 1.0}), std::invalid_argument);
}

TEST(Histogram, Quantile) {
  Histogram h{{10.0, 20.0, 30.0}};
  for (int i = 0; i < 90; ++i) h.record(5.0);
  for (int i = 0; i < 10; ++i) h.record(25.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 30.0);
}

TEST(Histogram, QuantileEmpty) {
  const Histogram h{{1.0}};
  EXPECT_EQ(h.quantile(0.99), 0.0);
}

}  // namespace
}  // namespace evps
