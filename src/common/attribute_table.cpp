#include "common/attribute_table.hpp"

#include <mutex>
#include <stdexcept>

namespace evps {

AttributeTable& AttributeTable::instance() {
  static AttributeTable table;
  return table;
}

AttrId AttributeTable::intern(std::string_view name) {
  {
    std::shared_lock lock(mu_);
    const auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock lock(mu_);
  const auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;  // raced with another intern
  const auto id = static_cast<AttrId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

AttrId AttributeTable::find(std::string_view name) const {
  std::shared_lock lock(mu_);
  const auto it = ids_.find(name);
  return it == ids_.end() ? kInvalidAttrId : it->second;
}

const std::string& AttributeTable::name(AttrId id) const {
  std::shared_lock lock(mu_);
  if (id >= names_.size()) throw std::out_of_range("unknown AttrId");
  return names_[id];
}

std::size_t AttributeTable::size() const {
  std::shared_lock lock(mu_);
  return names_.size();
}

}  // namespace evps
