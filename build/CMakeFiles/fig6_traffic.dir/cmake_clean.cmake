file(REMOVE_RECURSE
  "CMakeFiles/fig6_traffic.dir/bench/fig6_traffic.cpp.o"
  "CMakeFiles/fig6_traffic.dir/bench/fig6_traffic.cpp.o.d"
  "bench/fig6_traffic"
  "bench/fig6_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
