// Differential fuzz harness for the covering decision procedure
// (analysis/covering.hpp), including the relational (octagon) refinement.
//
// Property under test: covers(A, B) == kCovers is a *proof* — every
// publication matching B under any reachable variable assignment, any
// evaluation instant and any pair of subscription epochs must also match A.
// The harness decodes the fuzz input as a little generation script: it
// declares variable ranges, builds two subscriptions from byte-driven
// predicate templates (constants, variable-anchored bounds, shared-centre
// moving zones, strings, min-wrapped expressions), asks covers() for a
// verdict, and — when the verdict is kCovers — replays concrete probe
// publications (random, boundary anchors and their 1-ulp neighbours, ±inf,
// NaN, strings, missing attributes) against both subscriptions under
// churned variable states. Any counterexample aborts.
//
// kUnknown verdicts are never wrong (the analysis is allowed to give up),
// so the harness only spends probe budget on kCovers pairs.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/covering.hpp"
#include "message/codec.hpp"
#include "fuzz_driver.hpp"

namespace {

using namespace evps;

constexpr int kVarCount = 2;
const char* const kVarNames[] = {"fc_v0", "fc_v1"};
const char* const kAttrs[] = {"fcx", "fcy"};

/// Deterministic byte decoder: past-the-end reads yield zero, so every
/// input — including the empty one — decodes to a valid script.
struct ByteStream {
  const std::uint8_t* p;
  std::size_t n;
  std::size_t i = 0;

  std::uint8_t u8() { return i < n ? p[i++] : 0; }
  bool flag() { return (u8() & 1) != 0; }
  double in(double lo, double hi) { return lo + (hi - lo) * (u8() / 255.0); }
};

std::string num(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// One byte-driven predicate; collected offsets aim the boundary probes.
std::string make_pred(ByteStream& bs, std::vector<double>& offsets) {
  static const char* const kOps[] = {"<", "<=", ">", ">=", "=", "!="};
  const char* attr = kAttrs[bs.u8() % 2];
  const char* op = kOps[bs.u8() % 6];
  std::ostringstream os;
  switch (bs.u8() % 8) {
    case 0: {  // string constant
      os << attr << " " << (bs.flag() ? "=" : "!=") << " 'fc_tag" << bs.u8() % 3 << "'";
      return os.str();
    }
    case 1:
    case 2: {  // plain numeric constant
      const double c = bs.flag() ? std::floor(bs.in(-20.0, 20.0)) : bs.in(-20.0, 20.0);
      offsets.push_back(c);
      os << attr << " " << op << " " << num(c);
      return os.str();
    }
    default: {  // variable-anchored bound
      const std::string var = bs.u8() % 5 == 0 ? "t" : kVarNames[bs.u8() % kVarCount];
      const double c = bs.flag() ? std::floor(bs.in(-10.0, 10.0)) : bs.in(-10.0, 10.0);
      offsets.push_back(c);
      if (bs.u8() % 4 == 0) {
        os << attr << " " << op << " min(" << var << " + " << num(c) << ", "
           << num(bs.in(-15.0, 15.0)) << ")";
      } else if (bs.flag()) {
        os << attr << " " << op << " " << var << " + " << num(c);
      } else {
        os << attr << " " << op << " " << var << " - " << num(c);
      }
      return os.str();
    }
  }
}

/// Shared-centre moving zones — the relational refinement's home turf.
void make_zone_pair(ByteStream& bs, std::string& a_text, std::string& b_text,
                    std::vector<double>& offsets) {
  const char* attr = kAttrs[bs.u8() % 2];
  const std::string var = kVarNames[bs.u8() % kVarCount];
  const double c = std::floor(bs.in(-5.0, 5.0));
  const double wa = std::floor(bs.in(1.0, 60.0));
  const double wb = std::floor(bs.in(1.0, 60.0));
  offsets.push_back(c + wa);
  offsets.push_back(c - wa);
  offsets.push_back(c + wb);
  offsets.push_back(c - wb);
  std::ostringstream a, b;
  a << attr << " >= " << var << " + " << num(c - wa) << "; " << attr << " <= " << var << " + "
    << num(c + wa);
  b << attr << " >= " << var << " + " << num(c - wb) << "; " << attr << " <= " << var << " + "
    << num(c + wb);
  a_text = a.str();
  b_text = b.str();
}

bool matches_sub(const Subscription& sub, const Publication& pub, const EvalScope& scope) {
  for (const Predicate& pred : sub.predicates()) {
    const Value* v = pub.get(pred.attribute());
    if (v == nullptr || !pred.matches(*v, scope)) return false;
  }
  return true;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  ByteStream bs{data, size};

  VariableRegistry reg;
  double lo[kVarCount];
  double hi[kVarCount];
  bool bound[kVarCount];
  for (int i = 0; i < kVarCount; ++i) {
    lo[i] = std::floor(bs.in(-30.0, 0.0));
    hi[i] = lo[i] + std::floor(bs.in(0.0, 60.0));
    reg.declare_range(kVarNames[i], lo[i], hi[i]);
    bound[i] = bs.u8() % 8 != 0;
    if (bound[i]) reg.set(kVarNames[i], bs.in(lo[i], hi[i]), SimTime::zero());
  }

  std::vector<double> offsets;
  std::string a_text;
  std::string b_text;
  switch (bs.u8() % 4) {
    case 0:
      make_zone_pair(bs, a_text, b_text, offsets);
      break;
    case 1:
    case 2: {  // B = A plus extras: exercises the syntactic shortcut
      const int npreds = 1 + bs.u8() % 2;
      for (int i = 0; i < npreds; ++i) {
        if (i != 0) a_text += "; ";
        a_text += make_pred(bs, offsets);
      }
      b_text = a_text;
      const int extra = bs.u8() % 3;
      for (int i = 0; i < extra; ++i) b_text += "; " + make_pred(bs, offsets);
      break;
    }
    default: {
      for (int i = 0; i < 1 + bs.u8() % 2; ++i) {
        if (i != 0) a_text += "; ";
        a_text += make_pred(bs, offsets);
      }
      for (int i = 0; i < 1 + bs.u8() % 3; ++i) {
        if (i != 0) b_text += "; ";
        b_text += make_pred(bs, offsets);
      }
      break;
    }
  }

  Subscription a = parse_subscription("[tt=0.5] " + a_text);
  a.set_id(SubscriptionId{1});
  Subscription b = parse_subscription("[tt=0.5] " + b_text);
  b.set_id(SubscriptionId{2});
  if (covers(a, b, reg, /*relational=*/true) != CoverVerdict::kCovers) return 0;

  // Distinct epochs: A subscribed at 0, B half a second later. The verdict
  // must hold at every instant regardless of either subscription's age.
  EvalScope scope_a;
  EvalScope scope_b;
  double clock = 0.6;
  for (int round = 0; round < 3; ++round) {
    clock += 0.1 + bs.in(0.0, 2.0);
    for (int i = 0; i < kVarCount; ++i) {
      if (!bound[i]) continue;
      const double v = bs.u8() % 3 == 0 ? (bs.flag() ? lo[i] : hi[i]) : bs.in(lo[i], hi[i]);
      reg.set(kVarNames[i], v, SimTime::from_seconds(clock));
    }
    const SimTime now = SimTime::from_seconds(clock + bs.in(0.0, 0.5));
    scope_a.rebind(&reg, now);
    scope_a.set_epoch(SimTime::zero());
    scope_b.rebind(&reg, now);
    scope_b.set_epoch(SimTime::from_seconds(0.5));

    std::vector<Value> probe_values;
    probe_values.emplace_back(bs.in(-80.0, 80.0));
    probe_values.emplace_back(std::numeric_limits<double>::infinity());
    probe_values.emplace_back(-std::numeric_limits<double>::infinity());
    probe_values.emplace_back(std::numeric_limits<double>::quiet_NaN());
    probe_values.emplace_back(std::string("fc_tag") + std::to_string(bs.u8() % 3));
    std::vector<double> anchors = offsets;
    for (int i = 0; i < kVarCount; ++i) {
      if (const auto v = reg.get_at(kVarNames[i], now)) {
        for (const double off : offsets) anchors.push_back(*v + off);
      }
    }
    for (const double anchor : anchors) {
      probe_values.emplace_back(anchor);
      probe_values.emplace_back(std::nextafter(anchor, 1e300));
      probe_values.emplace_back(std::nextafter(anchor, -1e300));
    }

    for (const Value& px : probe_values) {
      for (int py_mode = 0; py_mode < 3; ++py_mode) {
        Publication pub;
        pub.set(kAttrs[0], px);
        if (py_mode == 0) {
          pub.set(kAttrs[1], probe_values[bs.u8() % probe_values.size()]);
        } else if (py_mode == 1) {
          pub.set(kAttrs[1], Value{bs.in(-80.0, 80.0)});
        }
        if (matches_sub(b, pub, scope_b) && !matches_sub(a, pub, scope_a)) {
          std::fprintf(stderr,
                       "false kCovers at t=%g:\n  A: %s\n  B: %s\n  pub: %s\n",
                       clock, a_text.c_str(), b_text.c_str(), serialize(pub).c_str());
          std::abort();
        }
      }
    }
  }
  return 0;
}
