# Empty compiler generated dependencies file for micro_matcher.
# This may be replaced when dependencies are built.
