// Relational refinement of the covering / satisfiability analyses.
//
// The per-attribute ValueSet shapes (analysis/covering.hpp) quantify each
// attribute's admissible values independently, so any *correlation* between
// an attribute and the evolution variable its bound tracks — or between two
// attributes whose bounds share a variable — is lost to the Cartesian
// product. A moving AoI `u >= cu - 60; u <= cu + 60` has an *empty* inner
// shape once `cu` ranges over a wide declared interval, even though it
// obviously covers `u >= cu - 30; u <= cu + 30`.
//
// This module recovers those proofs with an octagon abstract domain
// (analysis/octagon.hpp) over constraints `±attr ± var <= c`:
//
//   * A transfer-function pass (eval_relational) walks a compiled
//     ExprProgram and certifies interval bounds on `value - v` / `value + v`
//     for each *safe* variable v (declared ranges are finite and NaN-free;
//     `t` is elapsed time, always a real >= 0). Bounds absorb the
//     evaluator's floating-point rounding by outward error widening, so they
//     hold for the concrete double the evaluator produces.
//   * A subscription's OUTER octagon conjoins, for every attribute its outer
//     ValueSet forces to be numeric, the unary ValueSet bounds and the
//     certified `attr ± v` bounds of its evolving predicates, plus declared
//     variable ranges and t >= 0. Every (publication, assignment) pair that
//     matches the subscription induces a satisfying assignment, so an
//     unsatisfiable closed octagon proves the subscription relationally
//     unsatisfiable.
//   * A subscription's INNER requirements restate each predicate as a
//     disjunction of sufficient octagon conditions (fail-closed: a predicate
//     that could evaluate to NaN or reference an unset variable emits no
//     conditions). `covers_relational` proves A covers B by entailing, for
//     every attribute the per-attribute check could not decide, each of A's
//     requirements on that attribute from B's closed outer octagon.
//
// A purely syntactic shortcut rides along: an A-predicate whose compiled
// t-free program is instruction-identical to a B-predicate's on the same
// attribute is satisfied whenever B matches, provided B's operator implies
// A's (`<` implies `<=` and `!=`; `=` implies `<=` and `>=`). Both sides
// evaluate the same deterministic program under the same broker environment
// at the same instant, so the bounds are bit-identical — this is what keeps
// identical evolving predicates provable where symmetric error widening
// would otherwise lose them. (`t` is excluded: epochs differ between
// subscriptions.)
//
// Soundness contract: covers_relational only strengthens kUnknown to kCovers
// when the inclusion genuinely holds for every publication, variable
// assignment, and instant — tests/test_relational_soundness.cpp and
// fuzz/fuzz_covers.cpp validate this against concrete probe sampling.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "analysis/covering.hpp"
#include "analysis/interval.hpp"
#include "analysis/octagon.hpp"
#include "expr/program.hpp"
#include "expr/variable_registry.hpp"
#include "message/subscription.hpp"

namespace evps {

/// Result of the relational transfer pass over one program: the value
/// envelope plus certified bounds on value - v (diff) and value + v (sum)
/// for the tracked variables. Bounds use *real* arithmetic semantics with
/// outward rounding and hold whenever the concrete evaluation result is
/// numeric (a NaN result is excluded, mirroring Interval's contract).
struct RelBounds {
  Interval value = Interval::unknown();
  std::map<VarId, Interval> diff;
  std::map<VarId, Interval> sum;
};

/// Abstractly interpret `prog` tracking relations against `rel_vars` (must
/// be safe: never NaN under `vars`). The program must pass verify_program.
[[nodiscard]] RelBounds eval_relational(const ExprProgram& prog, const VarBounds& vars,
                                        const std::vector<VarId>& rel_vars);

/// One sufficient octagon condition: attr_sign*attr + var_sign*var <= c
/// (unary when var == kInvalidVarId). Entailed by a coverer candidate's
/// closed outer octagon => the originating predicate is satisfied.
struct RelCondition {
  AttrId attr = 0;
  int attr_sign = 1;
  VarId var = kInvalidVarId;
  int var_sign = 1;
  double c = 0.0;
  bool strict = false;
};

/// Syntactic signature of one evolving predicate (shortcut matching).
struct RelPredSig {
  AttrId attr = 0;
  RelOp op = RelOp::kLt;
  bool t_free = false;
  /// Index into Subscription::predicates() (redundancy analysis excludes a
  /// predicate's own signature when checking it against the others).
  int pred_index = -1;
  std::vector<ExprProgram::Insn> code;
};

/// Everything required of the coveree for ONE side of one coverer
/// predicate: satisfied when any octagon condition is entailed, or when a
/// coveree predicate with an identical t-free program and an implying
/// operator exists, or trivially (e.g. `!= "s"` on a numeric-forced
/// attribute). An empty requirement (no conditions, no shortcut) is
/// unprovable and fails closed.
struct RelRequirement {
  AttrId attr = 0;
  /// Index into Subscription::predicates() this side belongs to.
  int pred_index = -1;
  std::vector<RelCondition> any_of;
  /// Coveree operators that satisfy this side syntactically (empty: no
  /// shortcut). Valid only together with sig_index.
  std::vector<RelOp> shortcut_ops;
  /// Index into the owning RelationalShape::sigs, -1 when not evolving.
  int sig_index = -1;
  /// Holds for any numeric value (the pair check guarantees numeric-forced
  /// attributes before consulting requirements).
  bool trivially_satisfied = false;
};

/// Per-subscription relational summary, built once (octagon pre-closed) and
/// reused across pair checks — the relational analogue of
/// SubscriptionShape. Same monotonicity argument as the ValueSet shapes:
/// declared ranges are fixed, registry histories append-only, envelopes
/// quantify over all t >= 0.
struct RelationalShape {
  /// Inner side (subscription as coverer A).
  std::vector<RelRequirement> requirements;
  /// Signatures of the evolving predicates (shortcut source and target).
  std::vector<RelPredSig> sigs;

  /// Outer side (subscription as coveree B): closed constraint system over
  /// numeric-forced attributes and referenced safe variables.
  Octagon octagon{0};
  std::map<AttrId, std::size_t> attr_node;
  std::map<VarId, std::size_t> var_node;
  /// The outer octagon is unsatisfiable: no publication can match for any
  /// reachable assignment (relationally-unsatisfiable verdict).
  bool rel_unsat = false;
};

[[nodiscard]] RelationalShape relational_shape(const Subscription& sub,
                                               const VariableRegistry& registry);

/// Refinement pass for a pair the per-attribute check left kUnknown: re-walk
/// the per-attribute failures and prove each of A's requirements on those
/// attributes from B's outer octagon. kCovers only when every failure is
/// discharged and B forces the failed attributes numeric.
[[nodiscard]] CoverVerdict covers_relational(const SubscriptionShape& a_inner,
                                             const RelationalShape& a_rel,
                                             const SubscriptionShape& b_outer,
                                             const RelationalShape& b_rel);

/// Index of a predicate provably entailed by the conjunction of the OTHER
/// predicates (relationally-redundant verdict), or -1. Advisory: the
/// subscription behaves identically with the predicate removed.
[[nodiscard]] int find_redundant_predicate(const Subscription& sub,
                                           const VariableRegistry& registry);

}  // namespace evps
