// Lazy Evaluation Evolving Subscriptions (LEES) — Sections IV-B and V-B.
//
// A subscription is split in two parts sharing its id: the non-evolving
// predicates go into the standard matcher (producing match set M1), while
// the evolving predicates enter the Lazy Evolution Matching Engine (LEME),
// which is evaluated on demand for every incoming publication (producing
// M2). A publication is forwarded towards subscriptions in M1 ∩ M2;
// single-part subscriptions (only static or only evolving predicates) are
// flagged and decided by their one engine alone.
//
// The LEME groups evolving parts by *destination* (next hop): once any
// subscription of a destination is known to match, evaluation for that
// destination stops, because the publication must be forwarded there
// regardless of further matches — the early-exit behaviour behind
// Figure 10(b).
//
// Evolving predicates are compiled at install time (attribute ids + flat
// expression programs), so the per-publication loop touches no strings and
// allocates nothing (see lazy_storage.hpp for the scratch discipline).
//
// Sharding (DESIGN.md §11): the LEME is partitioned like the matcher — one
// LazyStorage per matcher shard, parts routed by the same id hash — and the
// lazy phase fans out one worker per shard. Each worker owns its shard's
// storage (generation stamps included) plus a private scope/stack/result
// scratch, so workers share nothing mutable. Purely-static settlement
// (mark_done) is broadcast to every shard before the fan-out, which keeps
// the done-destination skip exact for any K; the within-destination early
// exit is per (shard, destination) — for K=1 that is exactly the paper's
// behaviour, for K>1 it evaluates at most K-1 extra parts per destination
// (pure evaluations: delivery is unchanged, only the lazy_evaluations
// counter can differ between K values).
#pragma once

#include <vector>

#include "evolving/engine.hpp"
#include "evolving/lazy_storage.hpp"

namespace evps {

class LeesEngine final : public BrokerEngine {
 public:
  explicit LeesEngine(const EngineConfig& config);

  /// Number of subscriptions with at least one evolving predicate.
  [[nodiscard]] std::size_t leme_size() const noexcept {
    std::size_t total = 0;
    for (const auto& leme : leme_) total += leme.size();
    return total;
  }

  [[nodiscard]] std::size_t deduped_installs() const noexcept override {
    return BrokerEngine::deduped_installs() + lazy_dedup_.suppressed();
  }

  void export_audit_state(audit::EngineState& out) const override;

 protected:
  void do_add(const Installed& entry, EngineHost& host) override;
  void do_remove(const Installed& entry, EngineHost& host) override;
  void do_match(const Publication& pub, const VariableSnapshot* snapshot, EngineHost& host,
                std::vector<NodeId>& destinations) override;
  void do_match_batch(std::span<const Publication* const> pubs, const VariableSnapshot* snapshot,
                      EngineHost& host, std::vector<std::vector<NodeId>>& destinations) override;

 private:
  struct NoExtra {};
  using Leme = LazyStorage<NoExtra>;

  /// Per-shard-worker scratch; cacheline-aligned so parallel workers do not
  /// false-share counters.
  struct alignas(64) ShardScratch {
    EvalScope scope;
    std::vector<double> stack;
    std::vector<NodeId> dests;
    std::uint64_t lazy_evaluations = 0;
  };

  [[nodiscard]] Leme& leme_for(SubscriptionId id) noexcept {
    return leme_[sharded_->shard_of(id)];
  }

  /// True iff all compiled evolving predicates are satisfied by `pub` under
  /// `scope`.
  static bool evolving_part_matches(const Leme::Part& part, const Publication& pub,
                                    const EvalScope& scope, std::vector<double>& stack);

  /// Route the matcher hits: mark static halves in their shard's LEME,
  /// collect purely-static destinations and broadcast their settlement.
  /// Every shard's begin_match must have been called for this publication.
  void process_m1(const std::vector<SubscriptionId>& m1, std::vector<NodeId>& destinations);

  /// The parallel M2 phase: one worker per shard, results merged into
  /// `destinations` and costs_ afterwards. Caller times it.
  void lazy_eval_phase(const Publication& pub, const VariableSnapshot* snapshot,
                       const VariableRegistry& registry, SimTime now,
                       std::vector<NodeId>& destinations);

  std::vector<Leme> leme_;  // one per matcher shard (same id partition)
  std::vector<ShardScratch> shard_scratch_;
  /// Install-sharing over FULLY-evolving subscriptions: identical compiled
  /// predicates towards the same destination with the same epoch evaluate
  /// identically on every publication, so one LEME part stands in for the
  /// whole group. Split subscriptions never dedup (note_m1 is keyed by id).
  /// LEES-only: the CLEES/hybrid stores carry per-part cache state.
  DedupTable lazy_dedup_;
};

}  // namespace evps
