// Wire messages exchanged between nodes (clients and brokers) of the
// overlay. The simulator delivers Envelopes across links with latency.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/ids.hpp"
#include "common/sim_time.hpp"
#include "common/variable_table.hpp"
#include "message/advertisement.hpp"
#include "message/publication.hpp"
#include "message/subscription.hpp"

namespace evps {

/// Piggybacked snapshot of evolution-variable values recorded at the entry
/// broker (Section V-D, snapshot consistency extension for LEES/CLEES).
/// Keyed by interned VarId so engines bind snapshot values into their slot
/// scopes without touching variable names.
using VariableSnapshot = std::map<VarId, double>;
using VariableSnapshotPtr = std::shared_ptr<const VariableSnapshot>;

/// Build a snapshot from (name, value) pairs (tests / ad-hoc callers).
[[nodiscard]] inline VariableSnapshot make_variable_snapshot(
    std::initializer_list<std::pair<std::string_view, double>> init) {
  VariableSnapshot snap;
  for (const auto& [name, value] : init) {
    snap.emplace(VariableTable::instance().intern(name), value);
  }
  return snap;
}

struct SubscribeMsg {
  SubscriptionPtr sub;
};

struct UnsubscribeMsg {
  SubscriptionId id;
};

/// Parametric-subscriptions baseline [12]: one update message adjusts the
/// constant operands of an installed subscription in place. `new_values[i]`
/// replaces the operand of predicate i; entries without a value keep the
/// existing operand.
struct SubscriptionUpdateMsg {
  SubscriptionId id;
  std::vector<std::optional<Value>> new_values;
};

struct PublishMsg {
  PublicationPtr pub;
  /// Present only in snapshot-consistency mode.
  VariableSnapshotPtr snapshot;
};

/// A batch of publications forwarded over one broker-broker link as a single
/// message (DESIGN.md §14). Carries no snapshot: snapshot-carrying
/// publications bypass link batching (each one evaluates under its own
/// snapshot). Elements are shared with every other link's batch for the same
/// events, so K-way fan-out costs K refcounts, not K deep copies.
struct PublishBatchMsg {
  std::vector<PublicationPtr> pubs;
};

struct AdvertiseMsg {
  std::shared_ptr<const Advertisement> adv;
};

struct UnadvertiseMsg {
  MessageId id;
};

/// Control-plane propagation of a discrete evolution variable (e.g. the game
/// server flooding the current visibility value to brokers).
struct VarUpdateMsg {
  std::string name;
  double value;
};

/// Final-hop delivery from a broker to a matched subscriber client.
struct DeliveryMsg {
  PublicationPtr pub;
};

/// Grouped final-hop delivery: N matched events to one client in one
/// message. The client unpacks in order, so per-client delivery order and
/// timestamps are exactly those of N consecutive DeliveryMsg sends flushed
/// in the same virtual instant.
struct DeliveryBatchMsg {
  std::vector<PublicationPtr> pubs;
};

using Message = std::variant<SubscribeMsg, UnsubscribeMsg, SubscriptionUpdateMsg, PublishMsg,
                             PublishBatchMsg, AdvertiseMsg, UnadvertiseMsg, VarUpdateMsg,
                             DeliveryMsg, DeliveryBatchMsg>;

/// A message in flight between two nodes.
struct Envelope {
  MessageId id{};
  NodeId from{};
  NodeId to{};
  Message msg;
};

/// Subscription-related control traffic — the paper's primary metric counts
/// subscribe, unsubscribe and (for the parametric baseline) update messages
/// received by brokers (Section VI-A1).
[[nodiscard]] inline bool is_subscription_related(const Message& m) noexcept {
  return std::holds_alternative<SubscribeMsg>(m) || std::holds_alternative<UnsubscribeMsg>(m) ||
         std::holds_alternative<SubscriptionUpdateMsg>(m);
}

[[nodiscard]] inline const char* message_kind(const Message& m) noexcept {
  struct Visitor {
    const char* operator()(const SubscribeMsg&) const { return "subscribe"; }
    const char* operator()(const UnsubscribeMsg&) const { return "unsubscribe"; }
    const char* operator()(const SubscriptionUpdateMsg&) const { return "sub_update"; }
    const char* operator()(const PublishMsg&) const { return "publish"; }
    const char* operator()(const PublishBatchMsg&) const { return "publish_batch"; }
    const char* operator()(const AdvertiseMsg&) const { return "advertise"; }
    const char* operator()(const UnadvertiseMsg&) const { return "unadvertise"; }
    const char* operator()(const VarUpdateMsg&) const { return "var_update"; }
    const char* operator()(const DeliveryMsg&) const { return "delivery"; }
    const char* operator()(const DeliveryBatchMsg&) const { return "delivery_batch"; }
  };
  return std::visit(Visitor{}, m);
}

/// Publication events carried by a message (0 for control traffic): 1 for a
/// scalar publish/delivery, the batch size for batch messages. Metrics taps
/// use this so event counts stay invariant under link batching.
[[nodiscard]] inline std::size_t publications_carried(const Message& m) noexcept {
  if (std::holds_alternative<PublishMsg>(m) || std::holds_alternative<DeliveryMsg>(m)) return 1;
  if (const auto* b = std::get_if<PublishBatchMsg>(&m)) return b->pubs.size();
  if (const auto* b = std::get_if<DeliveryBatchMsg>(&m)) return b->pubs.size();
  return 0;
}

}  // namespace evps
