# Empty compiler generated dependencies file for test_hft.
# This may be replaced when dependencies are built.
