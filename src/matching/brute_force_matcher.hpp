// Reference matcher: linear scan over all stored subscriptions.
//
// Used as the correctness oracle in property tests and as the baseline in
// the matcher micro-benchmarks.
#pragma once

#include <map>

#include "matching/matcher.hpp"

namespace evps {

class BruteForceMatcher final : public Matcher {
 public:
  using Matcher::match;

  void add(SubscriptionId id, const std::vector<Predicate>& preds) override;
  bool remove(SubscriptionId id) override;
  void match(const Publication& pub, std::vector<SubscriptionId>& out) const override;
  [[nodiscard]] bool contains(SubscriptionId id) const override { return subs_.contains(id); }
  [[nodiscard]] std::size_t size() const override { return subs_.size(); }

 private:
  std::map<SubscriptionId, std::vector<Predicate>> subs_;
};

}  // namespace evps
