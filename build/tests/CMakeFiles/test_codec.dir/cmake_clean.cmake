file(REMOVE_RECURSE
  "CMakeFiles/test_codec.dir/test_codec.cpp.o"
  "CMakeFiles/test_codec.dir/test_codec.cpp.o.d"
  "test_codec"
  "test_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
