// End-to-end link batching: overlay messages per delivered event and entry
// pub rate vs BrokerConfig::link_batch_size (DESIGN.md §14).
//
// Two bursty workloads run on an advertisement-mode star overlay (core + 4
// edge brokers, LEES engines):
//
//   game — wide x/y interest zones clustered per edge (a few evolving,
//     load-scaled), publisher emitting position bursts across the map.
//   hft  — price bands per trading desk (a few volatility-scaled), publisher
//     emitting quote bursts across the book.
//
// The publisher emits its publications in per-tick bursts (many events in
// one virtual instant), the regime link batching targets: every overlay hop
// can pack a burst's worth of matched publications into one
// PublishBatchMsg/DeliveryBatchMsg. Each workload runs at link_batch_size
// in {1, 8, 64, 256} (with matcher batching set to match, so the sweep
// measures the whole batched pipeline) and records
//
//   - events per overlay message (LinkBatchCounters: envelopes vs
//     publications carried),
//   - wire bytes (codec serialization of what was actually sent),
//   - wall-clock publications/second through the entry broker.
//
// Self-checking (the bench-smoke ctest entry doubles as a regression test);
// exits nonzero when any of these fail:
//   1. client delivery logs at every batch size are bit-identical to the
//      link_batch_size=1 baseline (same pubs, same timestamps, same order);
//   2. events carried are invariant under batching;
//   3. link_batch_size=64 amortises >= 5 events per overlay message on both
//      workloads (the headline batching win).
//
// Results land in the "overlay_batch" section of BENCH_routing.json
// (argv[1] overrides the output path; the routing_covering section is
// preserved).
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "broker/overlay.hpp"
#include "common/rng.hpp"
#include "message/codec.hpp"
#include "metrics/report.hpp"
#include "metrics/traffic.hpp"

namespace {

using namespace evps;

constexpr int kEdges = 4;
constexpr int kSubsPerEdge = 6;
constexpr int kTicks = 40;
constexpr int kBurst = 96;  // publications per tick, all in one virtual instant

struct Workload {
  std::string name;
  std::string adv;
  std::vector<std::string> subs;  // edge-ordered: kSubsPerEdge per edge
  std::vector<std::string> pubs;  // kTicks bursts of kBurst, concatenated
};

std::string fmt_num(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

/// Wide clustered game zones: every edge watches a pile of big boxes, so a
/// map-wide burst matches a healthy slice of every edge's interest.
Workload make_game_workload() {
  Workload w;
  w.name = "game";
  w.adv = "x >= 0; x <= 1000; y >= 0; y <= 1000";
  Rng rng{515};
  for (int e = 0; e < kEdges; ++e) {
    for (int s = 0; s < kSubsPerEdge; ++s) {
      const double cx = rng.uniform(150.0, 850.0);
      const double cy = rng.uniform(150.0, 850.0);
      const double r = rng.uniform(100.0, 300.0);
      if (rng.bernoulli(0.25)) {
        // Evolving zone: the x reach scales with gz_load in [0, 1].
        w.subs.push_back("[tt=0.5] x >= " + fmt_num(cx - r) + "; x <= " + fmt_num(cx) + " + " +
                         fmt_num(r) + " * gz_load; y >= " + fmt_num(cy - r) + "; y <= " +
                         fmt_num(cy + r));
      } else {
        w.subs.push_back("x >= " + fmt_num(cx - r) + "; x <= " + fmt_num(cx + r) + "; y >= " +
                         fmt_num(cy - r) + "; y <= " + fmt_num(cy + r));
      }
    }
  }
  for (int t = 0; t < kTicks; ++t) {
    for (int p = 0; p < kBurst; ++p) {
      w.pubs.push_back("x = " + fmt_num(rng.uniform(0.0, 1000.0)) +
                       "; y = " + fmt_num(rng.uniform(0.0, 1000.0)));
    }
  }
  return w;
}

/// HFT price bands: wide desk bands (a few volatility-scaled) against
/// book-wide quote bursts.
Workload make_hft_workload() {
  Workload w;
  w.name = "hft";
  w.adv = "price >= 0; price <= 1000";
  Rng rng{99};
  for (int e = 0; e < kEdges; ++e) {
    for (int s = 0; s < kSubsPerEdge; ++s) {
      const double base = rng.uniform(100.0, 900.0);
      if (rng.bernoulli(0.25)) {
        // Volatility-scaled band: reach grows with hf_vix in [0, 1].
        w.subs.push_back("[tt=0.5] price >= " + fmt_num(base - 120) + "; price <= " +
                         fmt_num(base) + " + 120 * hf_vix");
      } else {
        const double r = rng.uniform(60.0, 180.0);
        w.subs.push_back("price >= " + fmt_num(base - r) + "; price <= " + fmt_num(base + r));
      }
    }
  }
  for (int t = 0; t < kTicks; ++t) {
    for (int p = 0; p < kBurst; ++p) {
      w.pubs.push_back("price = " + fmt_num(rng.uniform(0.0, 1000.0)));
    }
  }
  return w;
}

struct RunStats {
  LinkBatchCounters counters;
  std::uint64_t deliveries = 0;
  double wall_seconds = 0;
  double pubs_per_sec = 0;
  std::vector<std::string> delivery_log;
};

RunStats run(const Workload& w, std::size_t link_batch) {
  Simulator sim;
  Overlay overlay{sim};
  BrokerConfig cfg;
  cfg.engine.kind = EngineKind::kLees;
  cfg.routing = RoutingMode::kAdvertisement;
  // Sweep the whole batched pipeline: matcher batching and link batching at
  // the same width, zero flush deadline (the equivalence-preserving policy).
  cfg.batch_size = link_batch;
  cfg.link_batch_size = link_batch;
  cfg.measure_link_bytes = true;
  auto brokers = overlay.build_star(kEdges, cfg, Duration::millis(5));
  for (auto* b : brokers) {
    b->variables().declare_range("gz_load", 0.0, 1.0);
    b->variables().declare_range("hf_vix", 0.0, 1.0);
  }
  brokers[0]->set_variable("gz_load", 0.5);
  brokers[0]->set_variable("hf_vix", 0.4);

  PubSubClient& publisher = overlay.add_client("pub");
  publisher.connect(*brokers[1], Duration::millis(1));

  std::vector<PubSubClient*> subscribers;
  for (std::size_t i = 0; i < w.subs.size(); ++i) {
    PubSubClient& c = overlay.add_client("sub" + std::to_string(i));
    c.connect(*brokers[1 + (i / kSubsPerEdge) % kEdges], Duration::millis(1));
    subscribers.push_back(&c);
  }

  sim.after(Duration::zero(),
            [&] { publisher.advertise(parse_subscription(w.adv).predicates()); });
  for (std::size_t i = 0; i < w.subs.size(); ++i) {
    sim.after(Duration::seconds(1.0 + 0.01 * static_cast<double>(i)),
              [&, i] { subscribers[i]->subscribe(w.subs[i]); });
  }
  // The burst schedule: kBurst publications per tick, issued in one callback
  // so they share a virtual instant end-to-end.
  for (int t = 0; t < kTicks; ++t) {
    sim.after(Duration::seconds(3.0 + 0.01 * t), [&, t] {
      for (int p = 0; p < kBurst; ++p) {
        publisher.publish(w.pubs[static_cast<std::size_t>(t) * kBurst + p]);
      }
    });
  }

  const auto wall_start = std::chrono::steady_clock::now();
  sim.run_until(SimTime::from_seconds(10.0));
  const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - wall_start;

  RunStats r;
  r.counters = aggregate_link_counters(overlay);
  r.wall_seconds = wall.count();
  r.pubs_per_sec =
      r.wall_seconds <= 0 ? 0.0 : static_cast<double>(w.pubs.size()) / r.wall_seconds;
  for (const PubSubClient* c : subscribers) {
    r.deliveries += c->deliveries().size();
    for (const auto& d : c->deliveries()) {
      r.delivery_log.push_back(c->name() + "@" + std::to_string(d.when.micros()) + ":" +
                               serialize(d.pub));
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_routing.json";
  const std::size_t sweep[] = {1, 8, 64, 256};
  std::cout << "Link batching: overlay messages per delivered event vs link_batch_size\n";

  bool failed = false;
  std::ostringstream json;
  json << "{\n  \"overlay\": \"star, core + " << kEdges
       << " edges, advertisement routing, LEES\",\n  \"bursts\": \"" << kTicks << " x " << kBurst
       << " pubs per virtual instant\",\n  \"workloads\": [\n";

  const Workload workloads[] = {make_game_workload(), make_hft_workload()};
  for (std::size_t wi = 0; wi < 2; ++wi) {
    const Workload& w = workloads[wi];
    print_banner(w.name + " workload (" + std::to_string(w.subs.size()) + " subscriptions, " +
                 std::to_string(w.pubs.size()) + " publications)");

    std::vector<RunStats> runs;
    for (const std::size_t b : sweep) runs.push_back(run(w, b));
    const RunStats& base = runs.front();

    Table t{{"link_batch", "messages", "events", "events/msg", "bytes", "pubs/s"}};
    json << "    {\"name\":\"" << w.name << "\",\"series\":[\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const RunStats& r = runs[i];
      t.add_row({std::to_string(sweep[i]), std::to_string(r.counters.messages()),
                 std::to_string(r.counters.events),
                 Table::fmt(r.counters.events_per_message(), 2),
                 std::to_string(r.counters.bytes), Table::fmt(r.pubs_per_sec, 0)});
      json << "      {\"link_batch\":" << sweep[i] << ",\"messages\":" << r.counters.messages()
           << ",\"batch_messages\":" << r.counters.batch_messages
           << ",\"events\":" << r.counters.events
           << ",\"events_per_message\":" << Table::fmt(r.counters.events_per_message(), 3)
           << ",\"bytes\":" << r.counters.bytes << ",\"deliveries\":" << r.deliveries
           << ",\"pubs_per_sec\":" << Table::fmt(r.pubs_per_sec, 0)
           << ",\"wall_ms\":" << Table::fmt(r.wall_seconds * 1000.0, 1) << "}"
           << (i + 1 < runs.size() ? ",\n" : "\n");

      if (r.delivery_log != base.delivery_log) {
        std::cerr << "ERROR: " << w.name << " deliveries diverge at link_batch=" << sweep[i]
                  << " (baseline " << base.delivery_log.size() << " entries, got "
                  << r.delivery_log.size() << ")\n";
        failed = true;
      }
      if (r.counters.events != base.counters.events) {
        std::cerr << "ERROR: " << w.name << " events not invariant at link_batch=" << sweep[i]
                  << ": " << r.counters.events << " != " << base.counters.events << "\n";
        failed = true;
      }
      if (sweep[i] == 64 && r.counters.events_per_message() < 5.0) {
        std::cerr << "ERROR: " << w.name << " amortisation at link_batch=64 below 5x: "
                  << r.counters.events_per_message() << " events/message\n";
        failed = true;
      }
    }
    t.print();
    std::cout << format_link_report(runs[2].counters);
    json << "    ]}" << (wi == 0 ? ",\n" : "\n");
  }
  json << "  ]\n}";

  if (!write_json_section(out_path, "overlay_batch", json.str())) {
    std::cerr << "ERROR: cannot write " << out_path << "\n";
    return 1;
  }
  std::cout << "\nresults written to " << out_path << " (section overlay_batch)\n";
  return failed ? 1 : 0;
}
