// Human-readable text codec for publications, predicates and subscriptions.
//
// This is the client-facing subscription language:
//
//   publication:  "x = 4; y = 3; action = 'pickup'"
//   subscription: "[mei=1][tt=0.5][validity=10] x >= -3 + t; x <= 3 + t"
//
// Bracketed options (seconds, double) are optional and may appear in any
// order. A predicate operand that parses fully as a number or quoted string
// becomes a static constant; anything else is parsed as an evolution
// expression (see expr/parser.hpp).
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "message/predicate.hpp"
#include "message/publication.hpp"
#include "message/subscription.hpp"

namespace evps {

class CodecError : public std::runtime_error {
 public:
  /// offset() when no source location is known.
  static constexpr std::size_t kNoOffset = static_cast<std::size_t>(-1);

  using std::runtime_error::runtime_error;

  /// Failure at a known byte offset within the parsed text, with the
  /// offending token (propagated from ParseError for caret diagnostics).
  CodecError(const std::string& message, std::size_t offset, std::string token)
      : std::runtime_error(message), offset_(offset), token_(std::move(token)) {}

  [[nodiscard]] bool has_location() const noexcept { return offset_ != kNoOffset; }
  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }
  [[nodiscard]] const std::string& token() const noexcept { return token_; }

 private:
  std::size_t offset_ = kNoOffset;
  std::string token_;
};

[[nodiscard]] std::string serialize(const Publication& pub);
[[nodiscard]] Publication parse_publication(std::string_view text);

[[nodiscard]] std::string serialize(const Predicate& pred);
[[nodiscard]] Predicate parse_predicate(std::string_view text);

/// Serialises options (only non-default ones) followed by predicates.
[[nodiscard]] std::string serialize(const Subscription& sub);
[[nodiscard]] Subscription parse_subscription(std::string_view text);

// --- publication batches (PublishBatchMsg/DeliveryBatchMsg wire format) ----
//
// A batch serialises into ONE caller-owned arena buffer:
//
//   pubs n=<count>\n
//   <8-hex payload len> id=<u64> pub=<u64> t=<i64>\n
//   <payload: serialize(pub), exactly len bytes>\n
//   ... (count records)
//
// The length prefix is patched in place after the payload is written, so
// serialisation is a single pass appending into the arena — re-using the
// arena across batches makes steady-state serialisation allocation-free.
// Parsing validates the frame end to end (count, per-record length, id
// uniqueness, trailing bytes) and throws an offset-carrying CodecError
// before returning anything — a malformed batch is never partially applied.

/// Hard ceilings the parser enforces; oversized frames are rejected up front
/// so a corrupt header cannot drive allocation or scan amplification.
inline constexpr std::size_t kMaxBatchPublications = 1u << 16;
inline constexpr std::size_t kMaxBatchRecordBytes = 1u << 24;

/// Append the batch frame for `pubs` to `arena` (cleared first).
void serialize_batch(std::span<const Publication* const> pubs, std::string& arena);
void serialize_batch(std::span<const PublicationPtr> pubs, std::string& arena);
/// Convenience for contiguous publications (tests / ad-hoc callers).
[[nodiscard]] std::string serialize_batch(std::span<const Publication> pubs);

/// Exact byte size serialize_batch would produce for `pubs` (traffic
/// accounting without materialising the frame).
[[nodiscard]] std::size_t serialized_batch_size(std::span<const PublicationPtr> pubs);

/// Decode a batch frame. Id, publisher and entry time round-trip. Throws
/// CodecError (with the byte offset of the offending field) on any
/// truncated, oversized, duplicated-id or otherwise malformed frame.
[[nodiscard]] std::vector<Publication> parse_publication_batch(std::string_view text);

}  // namespace evps
