// Soundness of the covering analysis (analysis/covering.hpp), checked two
// ways:
//
//   * property sweep — over a thousand randomly generated subscription
//     pairs, every kCovers verdict is validated against concrete evaluation:
//     no sampled publication (numeric, string, NaN, missing-attribute) under
//     any sampled variable assignment and evaluation instant may match the
//     covered subscription without matching the coverer;
//   * end-to-end — a multi-broker advertisement-routed overlay runs the same
//     scripted workload (nested subscriptions, evolving bounds, variable
//     churn, coverer removal mid-run) with covering-based routing off and
//     on. Delivery logs must be bit-identical; the covering run must save
//     subscription-dissemination messages.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/covering.hpp"
#include "broker/audit_hook.hpp"
#include "broker/overlay.hpp"
#include "common/rng.hpp"
#include "message/codec.hpp"

namespace evps {
namespace {

SimTime sec(double s) { return SimTime::from_seconds(s); }

constexpr int kVarCount = 2;
const char* const kVarNames[] = {"cs_v0", "cs_v1"};
const char* const kAttrs[] = {"csx", "csy"};
const char* const kStrings[] = {"alpha", "beta", "gamma"};

struct VarDecl {
  double lo = 0;
  double hi = 0;
  bool bound = false;
};

std::string num(Rng& rng, double lo, double hi) {
  std::ostringstream os;
  os << rng.uniform(lo, hi);
  return os.str();
}

/// One random predicate as codec text. `constants` collects numeric operands
/// so the probe generator can aim publications exactly at the endpoints.
std::string random_pred(Rng& rng, std::vector<double>& constants) {
  static const char* const kOps[] = {"<", "<=", ">", ">=", "=", "!="};
  const char* attr = kAttrs[rng.uniform_int(0, 1)];
  const double roll = rng.uniform();
  std::ostringstream os;
  if (roll < 0.15) {
    // String constant; equality ops mostly, occasionally an ordering op to
    // exercise the conservative lexicographic path.
    const char* op = rng.bernoulli(0.8) ? (rng.bernoulli(0.5) ? "=" : "!=")
                                        : kOps[rng.uniform_int(0, 3)];
    os << attr << " " << op << " '" << kStrings[rng.uniform_int(0, 2)] << "'";
    return os.str();
  }
  const char* op = kOps[rng.uniform_int(0, 5)];
  if (roll < 0.55) {
    const double c = rng.bernoulli(0.3) ? std::floor(rng.uniform(-15.0, 15.0))
                                        : rng.uniform(-15.0, 15.0);
    constants.push_back(c);
    std::ostringstream cs;
    cs.precision(17);
    cs << c;
    os << attr << " " << op << " " << cs.str();
    return os.str();
  }
  // Evolving bound: linear in one variable or t, occasionally min/max.
  const std::string var = rng.bernoulli(0.3) ? "t" : kVarNames[rng.uniform_int(0, kVarCount - 1)];
  const std::string base = num(rng, -12.0, 12.0);
  const std::string coef = num(rng, -4.0, 4.0);
  if (rng.bernoulli(0.2)) {
    os << attr << " " << op << " min(" << base << " + " << coef << " * " << var << ", "
       << num(rng, -12.0, 12.0) << ")";
  } else {
    os << attr << " " << op << " " << base << " + " << coef << " * " << var;
  }
  return os.str();
}

std::string random_sub_text(Rng& rng, int npreds, std::vector<double>& constants) {
  std::string text;
  for (int i = 0; i < npreds; ++i) {
    if (i != 0) text += "; ";
    text += random_pred(rng, constants);
  }
  return text;
}

bool matches_sub(const Subscription& sub, const Publication& pub, const EvalScope& scope) {
  for (const Predicate& pred : sub.predicates()) {
    const Value* v = pub.get(pred.attribute());
    if (v == nullptr || !pred.matches(*v, scope)) return false;
  }
  return true;
}

TEST(CoveringSoundness, KCoversNeverViolatedOverSampledAssignments) {
  std::uint64_t covered_pairs = 0;
  std::uint64_t unknown_pairs = 0;
  std::uint64_t probes = 0;  // probes run against kCovers pairs

  for (std::uint64_t seed = 1; seed <= 1400; ++seed) {
    Rng rng{seed};
    VariableRegistry reg;
    VarDecl decls[kVarCount];
    for (int i = 0; i < kVarCount; ++i) {
      decls[i].lo = rng.uniform(-5.0, 5.0);
      decls[i].hi = rng.bernoulli(0.25) ? decls[i].lo : decls[i].lo + rng.uniform(0.0, 5.0);
      reg.declare_range(kVarNames[i], decls[i].lo, decls[i].hi);
      decls[i].bound = rng.bernoulli(0.8);
      if (decls[i].bound) {
        reg.set(kVarNames[i], rng.uniform(decls[i].lo, decls[i].hi), SimTime::zero());
      }
    }

    std::vector<double> constants;
    const std::string a_text =
        random_sub_text(rng, static_cast<int>(rng.uniform_int(1, 2)), constants);
    // Bias towards coverable pairs: B often starts as a copy of A with extra
    // predicates (a strictly more constrained subscription).
    std::string b_text;
    if (rng.bernoulli(0.6)) {
      b_text = a_text;
      const int extra = static_cast<int>(rng.uniform_int(0, 2));
      for (int i = 0; i < extra; ++i) b_text += "; " + random_pred(rng, constants);
    } else {
      b_text = random_sub_text(rng, static_cast<int>(rng.uniform_int(1, 3)), constants);
    }

    Subscription a = parse_subscription(a_text);
    a.set_id(SubscriptionId{seed * 2});
    Subscription b = parse_subscription(b_text);
    b.set_id(SubscriptionId{seed * 2 + 1});

    const CoverVerdict verdict = covers(a, b, reg);
    if (verdict == CoverVerdict::kUnknown) {
      ++unknown_pairs;
      continue;  // no claim made, nothing to falsify
    }
    ++covered_pairs;

    EvalScope scope;
    double clock = 0.0;
    for (int round = 0; round < 6; ++round) {
      clock += rng.uniform(0.1, 2.0);
      for (int i = 0; i < kVarCount; ++i) {
        if (!decls[i].bound) continue;
        // Endpoint values drive the envelope extremes.
        const double v = rng.bernoulli(0.3)
                             ? (rng.bernoulli(0.5) ? decls[i].lo : decls[i].hi)
                             : rng.uniform(decls[i].lo, decls[i].hi);
        reg.set(kVarNames[i], v, sec(clock));
      }
      scope.rebind(&reg, sec(clock + rng.uniform(0.0, 0.5)));
      scope.set_epoch(SimTime::zero());

      std::vector<Value> probe_values;
      probe_values.emplace_back(rng.uniform(-25.0, 25.0));
      probe_values.emplace_back(std::numeric_limits<double>::quiet_NaN());
      probe_values.emplace_back(std::string(kStrings[rng.uniform_int(0, 2)]));
      for (const double c : constants) {
        probe_values.emplace_back(c);
        probe_values.emplace_back(std::nextafter(c, 1e300));
        probe_values.emplace_back(std::nextafter(c, -1e300));
      }

      for (const Value& px : probe_values) {
        for (int py_mode = 0; py_mode < 3; ++py_mode) {
          Publication pub;
          pub.set(kAttrs[0], px);
          if (py_mode == 0) {
            pub.set(kAttrs[1], probe_values[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(probe_values.size()) - 1))]);
          } else if (py_mode == 1) {
            pub.set(kAttrs[1], Value{rng.uniform(-25.0, 25.0)});
          }
          // py_mode == 2: attribute absent (presence matters for covering).
          ++probes;
          if (matches_sub(b, pub, scope)) {
            ASSERT_TRUE(matches_sub(a, pub, scope))
                << "seed " << seed << " t=" << clock << ": publication matches covered sub\n"
                << "  A: " << a_text << "\n  B: " << b_text << "\n  pub: " << serialize(pub);
          }
        }
      }
    }
  }

  // The generator must actually exercise the verdict being tested.
  EXPECT_GE(covered_pairs, 100u);
  EXPECT_GE(unknown_pairs, 100u);
  EXPECT_GE(probes, 20000u);
}

// --- end-to-end: delivery sets identical, dissemination reduced -------------

struct RunResult {
  /// Per subscriber client: (delivery time in microseconds, serialized
  /// publication) — the full observable outcome.
  std::vector<std::vector<std::pair<std::int64_t, std::string>>> deliveries;
  std::uint64_t subscription_msgs = 0;
  std::uint64_t suppressed = 0;
  std::uint64_t resubscribes = 0;
  std::uint64_t demote_unsubscribes = 0;
};

RunResult run_scenario(bool covering_on) {
  Simulator sim;
  Overlay overlay{sim};
  BrokerConfig cfg;
  cfg.engine.kind = EngineKind::kLees;
  cfg.routing = RoutingMode::kAdvertisement;
  cfg.covering = covering_on;
  auto brokers = overlay.build_star(3, cfg, Duration::millis(5));
  for (auto* b : brokers) b->variables().declare_range("cs_load", 0.0, 1.0);

  PubSubClient& publisher = overlay.add_client("pub");
  PubSubClient& s1 = overlay.add_client("s1");
  PubSubClient& s2 = overlay.add_client("s2");
  PubSubClient& s3 = overlay.add_client("s3");
  PubSubClient& s4 = overlay.add_client("s4");
  PubSubClient& s5 = overlay.add_client("s5");
  publisher.connect(*brokers[1], Duration::millis(1));
  s1.connect(*brokers[2], Duration::millis(1));
  s2.connect(*brokers[2], Duration::millis(1));
  s3.connect(*brokers[2], Duration::millis(1));
  s4.connect(*brokers[3], Duration::millis(1));
  s5.connect(*brokers[2], Duration::millis(1));

  brokers[0]->set_variable("cs_load", 0.4);
  publisher.advertise({parse_predicate("price >= 0"), parse_predicate("price <= 100")});
  sim.run_until(sec(1));

  // s1 is the coverer; s2 (static) and s3 (evolving, envelope [30, 40]) are
  // covered; s4 sits on another edge and overlaps s1 without being covered.
  SubscriptionId root_id{};
  sim.after(Duration::seconds(1), [&] { root_id = s1.subscribe("price >= 0; price <= 80"); });
  sim.after(Duration::seconds(1.2), [&] { s2.subscribe("price >= 10; price <= 20"); });
  sim.after(Duration::seconds(1.4), [&] { s3.subscribe("[tt=0.5] price >= 10; price <= 30 + 10 * cs_load"); });
  sim.after(Duration::seconds(1.6), [&] { s4.subscribe("price >= 60; price <= 90"); });
  // Covered by s1 now AND by s2 after s1 leaves: on uncover it re-attaches
  // to the freshly promoted s2 silently instead of re-disseminating.
  sim.after(Duration::seconds(1.8), [&] { s5.subscribe("price >= 12; price <= 18"); });

  const double prices[] = {5, 15, 25, 35, 45, 65, 85, 95};
  double when = 2.0;
  for (const double p : prices) {
    sim.after(Duration::seconds(when), [&publisher, p] {
      publisher.publish("price = " + std::to_string(p));
    });
    when += 0.25;
  }

  // Variable churn moves s3's live bound inside its envelope.
  sim.after(Duration::seconds(4.1), [&] { brokers[0]->set_variable("cs_load", 0.9); });
  sim.after(Duration::seconds(4.2), [&publisher] { publisher.publish("price = 38"); });

  // Remove the coverer mid-run: covered subscriptions must be promoted and
  // re-disseminated before the unsubscribe propagates (no delivery gap).
  sim.after(Duration::seconds(5), [&] { s1.unsubscribe(root_id); });
  when = 6.0;
  for (const double p : prices) {
    sim.after(Duration::seconds(when), [&publisher, p] {
      publisher.publish("price = " + std::to_string(p));
    });
    when += 0.25;
  }
  sim.run_until(sec(10));

  // End-state invariant audit: the covering promotions, variable churn and
  // the mid-run unsubscribe must leave globally consistent routing state
  // (DESIGN.md §15) — throws AuditFailure with the violation list otherwise.
  audit::SimAuditHook(overlay).check();

  RunResult result;
  for (const PubSubClient* c : {&s1, &s2, &s3, &s4, &s5}) {
    std::vector<std::pair<std::int64_t, std::string>> log;
    for (const auto& d : c->deliveries()) {
      log.emplace_back(d.when.micros(), serialize(d.pub));
    }
    result.deliveries.push_back(std::move(log));
  }
  for (const auto& b : overlay.brokers()) {
    result.subscription_msgs += b->stats().subscription_msgs;
    result.suppressed += b->covering_counters().suppressed_forwards;
    result.resubscribes += b->covering_counters().resubscribes;
    result.demote_unsubscribes += b->covering_counters().demote_unsubscribes;
  }
  return result;
}

TEST(CoveringSoundness, BrokerDeliveriesBitIdenticalWithCoveringRouting) {
  const RunResult off = run_scenario(false);
  const RunResult on = run_scenario(true);

  ASSERT_EQ(off.deliveries.size(), on.deliveries.size());
  for (std::size_t c = 0; c < off.deliveries.size(); ++c) {
    EXPECT_EQ(off.deliveries[c], on.deliveries[c]) << "client " << c;
  }
  // Each subscriber saw real traffic (the scenario is not vacuous).
  for (const auto& log : off.deliveries) EXPECT_FALSE(log.empty());

  // Covering must have fired and must have saved dissemination messages.
  EXPECT_EQ(off.suppressed, 0u);
  EXPECT_GT(on.suppressed, 0u);
  EXPECT_GT(on.resubscribes, 0u);  // uncover-on-remove exercised
  EXPECT_LT(on.subscription_msgs, off.subscription_msgs);
}

// --- end-to-end: parametric updates that re-parent or demote ----------------
//
// Line e1 - hub - e2, publishers on both ends. At the hub:
//   A [0,30]   (local client)  — forwarded towards e1 and e2
//   B [15,70]  (client on e1)  — forwarded towards e2 only (never back
//                                towards its own origin e1)
//   W [80,95]  (local client)  — forwarded towards e1 and e2
//   V [82,93]  (local client)  — covered by W, fully suppressed
//   X [10,20]  (local client)  — covered by A, fully suppressed
//
// Then X updates to [20,60]: it leaves A and re-attaches under B, whose
// reach misses the e1 direction — the hub must forward the updated X
// towards e1 or pub1's publications in (30,60] are lost forever. V updates
// to [75,100]: it becomes a root, demotes W, and W's now-redundant upstream
// forwards are retracted. A deliberately oversized update (more values than
// predicates) is dropped at the first broker without desyncing the engine
// from the covering index.
RunResult run_update_scenario(bool covering_on) {
  Simulator sim;
  Overlay overlay{sim};
  BrokerConfig cfg;
  cfg.engine.kind = EngineKind::kLees;
  cfg.routing = RoutingMode::kAdvertisement;
  cfg.covering = covering_on;
  auto brokers = overlay.build_line(3, cfg, Duration::millis(5));
  Broker& e1 = *brokers[0];
  Broker& hub = *brokers[1];
  Broker& e2 = *brokers[2];

  PubSubClient& pub1 = overlay.add_client("pub1");
  PubSubClient& pub2 = overlay.add_client("pub2");
  PubSubClient& s_a = overlay.add_client("ua");
  PubSubClient& s_b = overlay.add_client("ub");
  PubSubClient& s_x = overlay.add_client("ux");
  PubSubClient& s_w = overlay.add_client("uw");
  PubSubClient& s_v = overlay.add_client("uv");
  pub1.connect(e1, Duration::millis(1));
  pub2.connect(e2, Duration::millis(1));
  s_b.connect(e1, Duration::millis(1));
  s_a.connect(hub, Duration::millis(1));
  s_x.connect(hub, Duration::millis(1));
  s_w.connect(hub, Duration::millis(1));
  s_v.connect(hub, Duration::millis(1));

  pub1.advertise({parse_predicate("price >= 0"), parse_predicate("price <= 100")});
  pub2.advertise({parse_predicate("price >= 0"), parse_predicate("price <= 100")});
  sim.run_until(sec(1));

  SubscriptionId x_id{};
  SubscriptionId v_id{};
  sim.after(Duration::seconds(0.2), [&] { s_a.subscribe("price >= 0; price <= 30"); });
  sim.after(Duration::seconds(0.4), [&] { s_b.subscribe("price >= 15; price <= 70"); });
  sim.after(Duration::seconds(0.6), [&] { s_w.subscribe("price >= 80; price <= 95"); });
  sim.after(Duration::seconds(0.8), [&] { v_id = s_v.subscribe("price >= 82; price <= 93"); });
  sim.after(Duration::seconds(1.0), [&] { x_id = s_x.subscribe("price >= 10; price <= 20"); });

  const double prices[] = {18, 25, 40, 55, 85};
  double when = 1.5;
  for (const double p : prices) {
    sim.after(Duration::seconds(when), [&pub1, p] { pub1.publish("price = " + std::to_string(p)); });
    sim.after(Duration::seconds(when + 0.1),
              [&pub2, p] { pub2.publish("price = " + std::to_string(p)); });
    when += 0.25;
  }

  // Re-parent: X hops from A's covering set into B's.
  sim.after(Duration::seconds(3.0),
            [&] { s_x.update_subscription(x_id, {Value{20.0}, Value{60.0}}); });
  // Demote-on-update: V widens past its coverer W.
  sim.after(Duration::seconds(3.2),
            [&] { s_v.update_subscription(v_id, {Value{75.0}, Value{100.0}}); });
  // Oversized on purpose: three values for two predicates.
  sim.after(Duration::seconds(3.4), [&] {
    s_x.update_subscription(x_id, {std::nullopt, std::nullopt, Value{99.0}});
  });

  when = 4.0;
  for (const double p : prices) {
    sim.after(Duration::seconds(when), [&pub1, p] { pub1.publish("price = " + std::to_string(p)); });
    sim.after(Duration::seconds(when + 0.1),
              [&pub2, p] { pub2.publish("price = " + std::to_string(p)); });
    when += 0.25;
  }
  sim.run_until(sec(8));

  RunResult result;
  for (const PubSubClient* c : {&s_a, &s_b, &s_x, &s_w, &s_v}) {
    std::vector<std::pair<std::int64_t, std::string>> log;
    for (const auto& d : c->deliveries()) {
      log.emplace_back(d.when.micros(), serialize(d.pub));
    }
    result.deliveries.push_back(std::move(log));
  }
  for (const auto& b : overlay.brokers()) {
    result.subscription_msgs += b->stats().subscription_msgs;
    result.suppressed += b->covering_counters().suppressed_forwards;
    result.resubscribes += b->covering_counters().resubscribes;
    result.demote_unsubscribes += b->covering_counters().demote_unsubscribes;
  }
  return result;
}

TEST(CoveringSoundness, UpdateReparentingKeepsDeliveriesBitIdentical) {
  const RunResult off = run_update_scenario(false);
  const RunResult on = run_update_scenario(true);

  ASSERT_EQ(off.deliveries.size(), on.deliveries.size());
  for (std::size_t c = 0; c < off.deliveries.size(); ++c) {
    EXPECT_EQ(off.deliveries[c], on.deliveries[c]) << "client " << c;
  }
  for (const auto& log : off.deliveries) EXPECT_FALSE(log.empty());
  // The regression probe is real traffic: X matches 18 twice before the
  // update and 25/40/55 from both publishers after it — the latter three
  // from pub1 only arrive if the hub forwarded the re-parented X towards
  // e1, the direction its new root B never reaches.
  EXPECT_EQ(off.deliveries[2].size(), 8u);

  EXPECT_EQ(off.suppressed, 0u);
  EXPECT_GT(on.suppressed, 0u);
  EXPECT_GT(on.resubscribes, 0u);         // re-parent + promoted-root forwards
  EXPECT_GT(on.demote_unsubscribes, 0u);  // W retracted behind the updated V
  EXPECT_LT(on.subscription_msgs, off.subscription_msgs);
}

}  // namespace
}  // namespace evps
