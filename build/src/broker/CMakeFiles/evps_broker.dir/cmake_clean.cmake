file(REMOVE_RECURSE
  "CMakeFiles/evps_broker.dir/broker.cpp.o"
  "CMakeFiles/evps_broker.dir/broker.cpp.o.d"
  "CMakeFiles/evps_broker.dir/client.cpp.o"
  "CMakeFiles/evps_broker.dir/client.cpp.o.d"
  "CMakeFiles/evps_broker.dir/overlay.cpp.o"
  "CMakeFiles/evps_broker.dir/overlay.cpp.o.d"
  "libevps_broker.a"
  "libevps_broker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evps_broker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
