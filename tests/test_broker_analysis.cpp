// Broker integration of subscribe-time analysis: verdicts drive install
// decisions per BrokerConfig::analysis, per-verdict counters accumulate, and
// the metrics report renders them.
#include <gtest/gtest.h>

#include <sstream>

#include "broker/overlay.hpp"
#include "message/codec.hpp"
#include "metrics/analysis_counters.hpp"

namespace evps {
namespace {

SimTime sec(double s) { return SimTime::from_seconds(s); }

BrokerConfig lees_config(AnalysisPolicy policy = AnalysisPolicy::kEnforce) {
  BrokerConfig cfg;
  cfg.engine.kind = EngineKind::kLees;
  cfg.analysis = policy;
  return cfg;
}

struct BrokerAnalysisTest : ::testing::Test {
  Simulator sim;
  Overlay overlay{sim};

  Broker& make_broker(AnalysisPolicy policy) {
    Broker& broker = overlay.add_broker("b0", lees_config(policy));
    // Declared ranges are what make verdicts provable.
    broker.variables().declare_range("ba_load", 0.0, 1.0);
    broker.variables().declare_range("ba_cap", 40.0, 40.0);
    broker.set_variable_local("ba_load", 0.5);
    broker.set_variable_local("ba_cap", 40.0);
    return broker;
  }
};

TEST_F(BrokerAnalysisTest, UnsatisfiableRejectedUnderEnforce) {
  Broker& broker = make_broker(AnalysisPolicy::kEnforce);
  PubSubClient& alice = overlay.add_client("alice");
  alice.connect(broker, Duration::millis(1));
  alice.subscribe("x <= 20 + 10 * ba_load; x >= 50");
  sim.run_until(sec(0.1));
  EXPECT_EQ(broker.subscription_count(), 0u);
  EXPECT_EQ(broker.analysis_counters().analyzed, 1u);
  EXPECT_EQ(broker.analysis_counters().rejected_unsatisfiable, 1u);
  EXPECT_EQ(broker.analysis_counters().rejected(), 1u);
}

TEST_F(BrokerAnalysisTest, UnsatisfiableInstalledUnderWarn) {
  Broker& broker = make_broker(AnalysisPolicy::kWarn);
  PubSubClient& alice = overlay.add_client("alice");
  alice.connect(broker, Duration::millis(1));
  alice.subscribe("x <= 20 + 10 * ba_load; x >= 50");
  sim.run_until(sec(0.1));
  EXPECT_EQ(broker.subscription_count(), 1u);  // counted but not enforced
  EXPECT_EQ(broker.analysis_counters().rejected_unsatisfiable, 1u);
}

TEST_F(BrokerAnalysisTest, ConstantBoundsFoldToStaticSubscription) {
  Broker& broker = make_broker(AnalysisPolicy::kEnforce);
  PubSubClient& alice = overlay.add_client("alice");
  PubSubClient& pubber = overlay.add_client("pubber");
  alice.connect(broker, Duration::millis(1));
  pubber.connect(broker, Duration::millis(1));

  const auto id = alice.subscribe("x <= 10 + ba_cap");
  sim.run_until(sec(0.1));
  ASSERT_EQ(broker.subscription_count(), 1u);
  EXPECT_EQ(broker.analysis_counters().folded_constant, 1u);
  const auto installed = broker.engine().subscription_of(id);
  ASSERT_NE(installed, nullptr);
  EXPECT_FALSE(installed->is_evolving());  // folded to x <= 50

  pubber.publish("x = 49");
  pubber.publish("x = 51");
  sim.run_until(sec(1));
  ASSERT_EQ(alice.deliveries().size(), 1u);
  EXPECT_EQ(alice.deliveries()[0].pub.get("x")->as_int(), 49);
}

TEST_F(BrokerAnalysisTest, SatisfiableEvolvingSubscriptionUntouched) {
  Broker& broker = make_broker(AnalysisPolicy::kEnforce);
  PubSubClient& alice = overlay.add_client("alice");
  PubSubClient& pubber = overlay.add_client("pubber");
  alice.connect(broker, Duration::millis(1));
  pubber.connect(broker, Duration::millis(1));

  const auto id = alice.subscribe("x >= -3 + t; x <= 3 + t");
  sim.run_until(sec(0.1));
  ASSERT_EQ(broker.subscription_count(), 1u);
  const auto installed = broker.engine().subscription_of(id);
  ASSERT_NE(installed, nullptr);
  EXPECT_TRUE(installed->is_evolving());
  EXPECT_EQ(broker.analysis_counters().analyzed, 1u);
  EXPECT_EQ(broker.analysis_counters().rejected(), 0u);
  EXPECT_EQ(broker.analysis_counters().folded_constant, 0u);

  pubber.publish("x = 1");
  sim.run_until(sec(1));
  EXPECT_EQ(alice.deliveries().size(), 1u);
}

TEST_F(BrokerAnalysisTest, UncoveredFlaggedButInstalled) {
  BrokerConfig cfg = lees_config(AnalysisPolicy::kEnforce);
  cfg.routing = RoutingMode::kAdvertisement;
  Broker& broker = overlay.add_broker("b0", cfg);
  broker.variables().declare_range("ba_load", 0.0, 1.0);
  broker.set_variable_local("ba_load", 0.5);
  PubSubClient& alice = overlay.add_client("alice");
  PubSubClient& pubber = overlay.add_client("pubber");
  alice.connect(broker, Duration::millis(1));
  pubber.connect(broker, Duration::millis(1));

  pubber.advertise({Predicate{"x", RelOp::kGe, Value{0.0}},
                    Predicate{"x", RelOp::kLe, Value{100.0}}});
  sim.run_until(sec(0.1));
  alice.subscribe("x >= 150 + 10 * ba_load");
  sim.run_until(sec(0.2));
  EXPECT_EQ(broker.subscription_count(), 1u);  // flagged, not rejected
  EXPECT_EQ(broker.analysis_counters().flagged_uncovered, 1u);
  EXPECT_EQ(broker.analysis_counters().rejected(), 0u);
}

TEST_F(BrokerAnalysisTest, StaticSubscriptionsSkipAnalysis) {
  Broker& broker = make_broker(AnalysisPolicy::kEnforce);
  PubSubClient& alice = overlay.add_client("alice");
  alice.connect(broker, Duration::millis(1));
  alice.subscribe("x >= 0; x <= 10");
  sim.run_until(sec(0.1));
  EXPECT_EQ(broker.subscription_count(), 1u);
  EXPECT_EQ(broker.analysis_counters().analyzed, 0u);
}

TEST_F(BrokerAnalysisTest, AnalysisOffInstallsEverything) {
  Broker& broker = make_broker(AnalysisPolicy::kOff);
  PubSubClient& alice = overlay.add_client("alice");
  alice.connect(broker, Duration::millis(1));
  alice.subscribe("x <= 20 + 10 * ba_load; x >= 50");
  sim.run_until(sec(0.1));
  EXPECT_EQ(broker.subscription_count(), 1u);
  EXPECT_EQ(broker.analysis_counters().analyzed, 0u);
}

TEST_F(BrokerAnalysisTest, ReportRendersPerVerdictCounters) {
  Broker& broker = make_broker(AnalysisPolicy::kEnforce);
  PubSubClient& alice = overlay.add_client("alice");
  alice.connect(broker, Duration::millis(1));
  alice.subscribe("x <= 20 + 10 * ba_load; x >= 50");  // rejected
  alice.subscribe("x <= 10 + ba_cap");                 // folded
  alice.subscribe("x <= 3 + t");                       // ok
  sim.run_until(sec(0.1));

  std::ostringstream out;
  print_analysis_report({&broker}, out);
  const std::string report = out.str();
  EXPECT_NE(report.find("b0"), std::string::npos);
  EXPECT_NE(report.find("unsat"), std::string::npos);
  EXPECT_EQ(broker.analysis_counters().analyzed, 3u);
  EXPECT_EQ(broker.analysis_counters().rejected_unsatisfiable, 1u);
  EXPECT_EQ(broker.analysis_counters().folded_constant, 1u);
}

}  // namespace
}  // namespace evps
